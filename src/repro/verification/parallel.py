"""Multiprocess image computation inside the relational fixpoint.

The transition relation of both symbolic engines is *conjunctively
partitioned* (:class:`~repro.verification.relational.PartitionedRelation`),
and image computation is embarrassingly parallel along two independent
axes.  This module runs either axis on a persistent pool of spawned worker
processes:

* **frontier sharding** (``parallel_mode="frontier"``, the default) — the
  image distributes over disjunction, so the frontier is shattered into
  pairwise-disjoint shards by cofactoring on state variables
  (:func:`shatter_frontier`); each worker computes the *full* early-quantified
  image of its shards and the parent disjoins the results.  Exactly the
  dist_zero-style sharding of a reactive network: disjoint state sets evolve
  independently under one shared relation.

* **cluster parallelism** (``parallel_mode="clusters"``) — one task per
  relation cluster: each worker computes ``∃ privateᵢ . (frontier ∧
  clusterᵢ)``.  Existential quantification does **not** distribute over
  conjunction, so a worker may only eliminate the quantified variables
  *private* to its cluster — mentioned by no other cluster and never by a
  frontier (frontier supports lie inside the state bits).  The parent
  conjoins the partial products and eliminates the remaining shared
  variables with the usual early-quantification fold, so the result is the
  sequential image, function for function.

Workers are spawned once and reused: a :class:`WorkerGroup` is shared
process-wide (:func:`shared_group`) and engines *attach* to it — shipping
the variable order and cluster BDDs (PR 6's :func:`~repro.clocks.bdd.dump_nodes`
payloads) exactly once per worker — then stream per-iteration frontiers as
*delta* payloads through an :class:`~repro.clocks.bdd.IncrementalDumper`, so
nodes a worker already holds are referenced by index instead of re-encoded.
Worker managers never reorder (their loader tables must stay canonical);
they inherit the parent's attach-time sifted order instead.

Everything is differential by construction: pooled and sequential fixpoints
run in the *same parent manager* and hash-consing makes equal functions the
identical node, which ``tests/test_parallel_image.py`` pins across both
engine corpora (verdicts, state counts, rings, rendered traces).
"""

from __future__ import annotations

import atexit
import os
import pickle
import signal
import time
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from ..clocks.bdd import (
    BDDManager,
    BDDNode,
    IncrementalDumper,
    IncrementalLoader,
    dump_nodes,
    load_nodes,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .relational import RelationalFixpointEngine

__all__ = [
    "PARALLEL_MODES",
    "WORKERS_ENV",
    "ParallelImageEngine",
    "WorkerGroup",
    "resolve_workers",
    "shared_group",
    "shatter_frontier",
    "shutdown_shared_groups",
    "global_stats",
    "reset_global_stats",
]

#: The frontier-sharding and cluster-parallel image modes.
PARALLEL_MODES = ("frontier", "clusters")

#: Environment variable ``parallel="auto"`` honours before ``os.cpu_count()``
#: — the CI matrix leg sets it to pin pooled-vs-sequential equality at fixed
#: worker counts, and the repo conftest serves it to the differential suite.
WORKERS_ENV = "REPRO_PARALLEL_WORKERS"

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Process-wide counters the bench-smoke trajectory records per benchmark
#: (``workers`` = largest pool used since the last reset, ``images`` = pooled
#: image computations) — same reset-per-test pattern as the BDD globals.
GLOBAL_STATS = {"workers": 0, "images": 0}


def reset_global_stats() -> None:
    """Zero the process-wide pooled-image counters (per-benchmark scoping)."""
    GLOBAL_STATS["workers"] = 0
    GLOBAL_STATS["images"] = 0


def global_stats() -> dict:
    """A snapshot of the process-wide pooled-image counters."""
    return dict(GLOBAL_STATS)


def resolve_workers(parallel: Optional[Union[int, str]]) -> Optional[int]:
    """Worker count for an ``options.parallel`` value (None = stay sequential).

    ``"auto"`` reads :data:`WORKERS_ENV` when set, else ``os.cpu_count()``;
    an explicit positive integer is taken as-is.  ``None`` and ``0`` mean
    sequential.  Anything else is a configuration error.
    """
    if isinstance(parallel, bool):
        raise ValueError(f"parallel must be a positive int, 'auto' or None, not {parallel!r}")
    if parallel is None or parallel == 0:
        return None
    if parallel == "auto":
        configured = os.environ.get(WORKERS_ENV)
        if configured is not None:
            try:
                count = int(configured)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, not {configured!r}"
                ) from None
        else:
            count = os.cpu_count() or 1
        return max(1, count)
    if not isinstance(parallel, int):
        raise ValueError(f"parallel must be a positive int, 'auto' or None, not {parallel!r}")
    if parallel < 0:
        raise ValueError(f"parallel must be a positive int, 'auto' or None, not {parallel!r}")
    return parallel


def shatter_frontier(
    manager: BDDManager, states: BDDNode, pieces: int, variables: Sequence[str]
) -> list[BDDNode]:
    """Split a state set into at most ``pieces`` pairwise-disjoint shards.

    Repeatedly cofactors the currently largest shard on the first of
    ``variables`` (state bits, declaration order — so usually the shard's
    top level) with two non-empty cofactors: ``shard ∧ ¬v`` and ``shard ∧
    v``.  The shards are disjoint by construction and disjoin back to
    ``states``, so — image distributing over disjunction — their images
    disjoin to the image of ``states``.  A shard pinning every variable
    (one concrete state) cannot split; it is kept whole.
    """
    if states is manager.false:
        return []
    if pieces <= 1:
        return [states]
    shards = [states]
    whole: list[BDDNode] = []
    while shards and len(shards) + len(whole) < pieces:
        shards.sort(key=manager.size)
        candidate = shards.pop()
        split = _split_one(manager, candidate, variables)
        if split is None:
            whole.append(candidate)
        else:
            shards.extend(split)
    return shards + whole


def _split_one(
    manager: BDDManager, shard: BDDNode, variables: Sequence[str]
) -> Optional[list[BDDNode]]:
    for name in variables:
        low = manager.conj(shard, manager.nvar(name))
        if low is manager.false or low is shard:
            continue
        # ``low`` is a proper non-empty subset, so the positive cofactor is
        # non-empty too.
        return [low, manager.conj(shard, manager.var(name))]
    return None


# ------------------------------------------------------------------ worker side

class _WorkerRelation:
    """One attached relation inside a worker process.

    Rehydrated exactly once per (worker, engine) from the attach payload —
    its own manager (reordering off: the incremental loader table must stay
    canonical), the cluster BDDs reloaded under the parent's attach-time
    order, and the early-quantification machinery of
    :class:`~repro.verification.relational.PartitionedRelation` reused
    verbatim.  Per-iteration frontiers arrive as delta payloads.
    """

    def __init__(self, payload: dict) -> None:
        from .relational import PartitionedRelation

        manager = BDDManager(payload["order"])
        clusters = load_nodes(manager, payload["clusters"])
        self.manager = manager
        self.relation = PartitionedRelation(manager, clusters, cluster_size=0)
        self.quantified = list(payload["quantified"])
        self.unprime = dict(payload["unprime"])
        self.private = [list(names) for names in payload["private"]]
        self.loader = IncrementalLoader(manager)

    def image(self, request: dict) -> dict:
        """The full early-quantified, unprimed image of one frontier shard."""
        (seed,) = self.loader.load(request["seed"])
        successors = self.relation.product(seed, self.quantified)
        return dump_nodes(self.manager, [self.manager.rename(successors, self.unprime)])

    def partial(self, request: dict) -> dict:
        """``∃ privateᵢ . (frontier ∧ clusterᵢ)`` — one cluster's partial product."""
        (seed,) = self.loader.load(request["seed"])
        index = request["cluster"]
        part = self.manager.and_exists(seed, self.relation.clusters[index], self.private[index])
        return dump_nodes(self.manager, [part])


def _image_worker_main(connection) -> None:
    """Entry point of one pooled image worker (spawn-safe, module-level).

    Serves attach/detach/image/partial requests over its pipe until the
    parent sends ``stop`` or closes the channel; any per-request failure is
    answered as a structured error instead of killing the worker.
    """
    if hasattr(signal, "SIGINT"):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    relations: dict[int, _WorkerRelation] = {}
    while True:
        try:
            request = pickle.loads(connection.recv_bytes())
        except (EOFError, OSError):
            break
        operation = request.get("op")
        if operation == "stop":
            break
        try:
            started = time.perf_counter()
            if operation == "attach":
                relations[request["relation"]] = _WorkerRelation(request)
                reply = {"ok": True}
            elif operation == "detach":
                relations.pop(request["relation"], None)
                reply = {"ok": True}
            elif operation in ("image", "partial"):
                relation = relations[request["relation"]]
                dump = relation.image(request) if operation == "image" else relation.partial(request)
                reply = {"ok": True, "dump": dump}
            else:
                raise ValueError(f"unknown image-worker request {operation!r}")
            reply["seconds"] = time.perf_counter() - started
        except Exception as error:  # noqa: BLE001 - every failure must reach the parent
            reply = {"error": f"{type(error).__name__}: {error}"}
        connection.send_bytes(pickle.dumps(reply, protocol=_PICKLE_PROTOCOL))
    connection.close()


# ------------------------------------------------------------------ parent side

class WorkerGroup:
    """A persistent pool of spawned image workers, shared across engines.

    Processes start lazily on first use and host any number of attached
    relations concurrently (each under its own worker-side manager), keyed
    by parent-assigned relation ids — so one group serves every engine of a
    process, across fixpoints, which is what makes the spawn cost a
    once-per-process constant instead of a per-reach tax.  Workers are
    daemons: a dying parent never leaks them.
    """

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError(f"a worker group needs at least one worker, not {count}")
        self.count = count
        self._context = get_context("spawn")
        self._processes: list = []
        self.connections: list = []
        self._started = False
        self.closed = False
        self._next_relation = 0

    def start(self) -> None:
        """Spawn the workers (idempotent)."""
        if self._started:
            if self.closed:
                raise RuntimeError("this worker group has been shut down")
            return
        self._started = True
        for index in range(self.count):
            parent_end, child_end = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=_image_worker_main,
                args=(child_end,),
                name=f"repro-image-worker-{index}",
                daemon=True,
            )
            process.start()
            child_end.close()
            self._processes.append(process)
            self.connections.append(parent_end)
        GLOBAL_STATS["workers"] = max(GLOBAL_STATS["workers"], self.count)

    def new_relation_id(self) -> int:
        """A fresh id for an engine attaching its relation to this group."""
        self._next_relation += 1
        return self._next_relation

    def send(self, worker: int, request: dict) -> int:
        """Ship one request to ``worker``; returns the serialised byte count."""
        data = pickle.dumps(request, protocol=_PICKLE_PROTOCOL)
        self.connections[worker].send_bytes(data)
        return len(data)

    def receive(self, worker: int) -> tuple[dict, int]:
        """One reply from ``worker`` as ``(payload, byte_count)``."""
        try:
            data = self.connections[worker].recv_bytes()
        except (EOFError, OSError) as error:
            raise RuntimeError(
                f"parallel image worker {worker} died mid-request"
            ) from error
        reply = pickle.loads(data)
        if "error" in reply:
            raise RuntimeError(f"parallel image worker {worker} failed: {reply['error']}")
        return reply, len(data)

    def close(self) -> None:
        """Stop every worker; the group cannot be used afterwards."""
        if self.closed:
            return
        self.closed = True
        for connection in self.connections:
            try:
                connection.send_bytes(pickle.dumps({"op": "stop"}, protocol=_PICKLE_PROTOCOL))
            except (OSError, ValueError):
                pass
        for connection in self.connections:
            try:
                connection.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive teardown
                process.terminate()
                process.join(timeout=5)
        self._processes.clear()
        self.connections.clear()


_SHARED_GROUPS: dict[int, WorkerGroup] = {}


def shared_group(count: int) -> WorkerGroup:
    """The process-wide worker group of ``count`` workers (created on demand).

    Shared across engines *and* across fixpoints — including the job layer's
    worker processes, where one group serves every job the worker runs.
    """
    group = _SHARED_GROUPS.get(count)
    if group is None or group.closed:
        group = WorkerGroup(count)
        _SHARED_GROUPS[count] = group
    return group


def shutdown_shared_groups() -> None:
    """Stop every shared worker group (atexit, and job-worker teardown)."""
    for group in _SHARED_GROUPS.values():
        group.close()
    _SHARED_GROUPS.clear()


atexit.register(shutdown_shared_groups)


class ParallelImageEngine:
    """Pooled image computation over one engine's partitioned relation.

    A drop-in for :meth:`RelationalFixpointEngine.image
    <repro.verification.relational.RelationalFixpointEngine.image>` inside
    the reach fixpoint: results are computed in the parent's own manager, so
    hash-consing makes a pooled image the *identical node* the sequential
    fold would have produced.  Attachment (shipping the variable order and
    cluster dumps to every worker) happens lazily on the first image;
    :meth:`finish` detaches and returns the accumulated statistics, leaving
    the shared worker group alive for the next engine.
    """

    def __init__(
        self,
        engine: "RelationalFixpointEngine",
        workers: int,
        mode: str = "frontier",
        group: Optional[WorkerGroup] = None,
    ) -> None:
        if mode not in PARALLEL_MODES:
            raise ValueError(f"parallel_mode must be one of {PARALLEL_MODES}, not {mode!r}")
        self.engine = engine
        self.mode = mode
        self.group = group if group is not None else shared_group(workers)
        self._relation_id: Optional[int] = None
        self._dumpers: list[IncrementalDumper] = []
        self._attached = False
        self._remaining: list[str] = []
        self.stats: dict = {
            "parallel_workers": self.group.count,
            "parallel_mode": mode,
            "parallel_images": 0,
            "parallel_requests": 0,
            "parallel_bytes_sent": 0,
            "parallel_bytes_received": 0,
            "parallel_worker_seconds": 0.0,
        }

    # -- attachment --------------------------------------------------------------

    def _private_variables(self) -> list[list[str]]:
        """Per cluster: the quantified variables only that cluster mentions.

        A worker may eliminate a variable locally only when no *other*
        conjunct of the product mentions it — neither another cluster nor
        the frontier seed, whose support always lies inside the state bits.
        Everything else stays for the parent's shared fold.
        """
        engine = self.engine
        quantified = frozenset(engine.signal_bits) | frozenset(engine.state_bits)
        seed_bits = frozenset(engine.state_bits)
        supports = engine.relation._supports
        private: list[list[str]] = []
        eliminated: set[str] = set()
        for index, support in enumerate(supports):
            others: frozenset = frozenset()
            for other_index, other in enumerate(supports):
                if other_index != index:
                    others |= other
            names = (support & quantified) - seed_bits - others
            private.append(sorted(names))
            eliminated |= names
        self._remaining = sorted(quantified - eliminated)
        return private

    def _attach(self) -> None:
        engine = self.engine
        group = self.group
        group.start()
        # Recorded here as well as at spawn time: the group outlives the
        # per-benchmark counter resets, so a reused pool must still show up.
        GLOBAL_STATS["workers"] = max(GLOBAL_STATS["workers"], group.count)
        payload = {
            "op": "attach",
            "relation": group.new_relation_id(),
            "order": list(engine.manager.variables),
            "clusters": dump_nodes(engine.manager, engine.relation.clusters),
            "quantified": list(engine.signal_bits) + list(engine.state_bits),
            "unprime": dict(engine._unprime_map),
            "private": self._private_variables(),
        }
        self._relation_id = payload["relation"]
        self._broadcast(payload)
        self._dumpers = [IncrementalDumper(engine.manager) for _ in range(group.count)]
        self._attached = True

    def _broadcast(self, request: dict) -> None:
        # Replies to attach/detach are tiny, so send-all-then-read-all cannot
        # fill both pipe directions at once.
        group = self.group
        for worker in range(group.count):
            self.stats["parallel_bytes_sent"] += group.send(worker, request)
        for worker in range(group.count):
            reply, received = group.receive(worker)
            self.stats["parallel_bytes_received"] += received
            self.stats["parallel_worker_seconds"] += reply.get("seconds", 0.0)

    # -- the image ----------------------------------------------------------------

    def image(self, states: BDDNode) -> BDDNode:
        """Successors of ``states``, computed on the pool (≡ sequential image)."""
        engine = self.engine
        manager = engine.manager
        if not self._attached:
            self._attach()
        self.stats["parallel_images"] += 1
        GLOBAL_STATS["images"] += 1
        relation_id = self._relation_id
        if self.mode == "frontier":
            shards = shatter_frontier(manager, states, self.group.count, engine.state_bits)
            if not shards:
                return manager.false

            def build_shard(shard: BDDNode) -> Callable[[int], dict]:
                def build(worker: int) -> dict:
                    return {
                        "op": "image",
                        "relation": relation_id,
                        "seed": self._dumpers[worker].dump([shard]),
                    }

                return build

            replies = self._run([build_shard(shard) for shard in shards])
            return manager.disj_all(load_nodes(manager, reply["dump"])[0] for reply in replies)

        def build_cluster(index: int) -> Callable[[int], dict]:
            def build(worker: int) -> dict:
                return {
                    "op": "partial",
                    "relation": relation_id,
                    "cluster": index,
                    "seed": self._dumpers[worker].dump([states]),
                }

            return build

        from .relational import PartitionedRelation

        replies = self._run([build_cluster(i) for i in range(len(engine.relation.clusters))])
        partials = [load_nodes(manager, reply["dump"])[0] for reply in replies]
        # The shared variables (and those quantified out of the seed alone)
        # are eliminated here, with the usual early-quantification fold over
        # the partial products.
        folded = PartitionedRelation(manager, partials, cluster_size=0).product(
            manager.true, self._remaining
        )
        return manager.rename(folded, engine._unprime_map)

    def _run(self, builders: Sequence[Callable[[int], dict]]) -> list[dict]:
        """Dispatch tasks one-outstanding-per-worker and collect all replies.

        Payloads are built *at dispatch time* for the worker actually chosen,
        so each worker's incremental dump channel sees its requests in send
        order.  Keeping a single request in flight per worker bounds what
        either pipe direction buffers — large frontier dumps and large result
        dumps can never deadlock against each other.
        """
        group = self.group
        connections = group.connections
        results: list = [None] * len(builders)
        idle = list(range(group.count))
        pending: dict = {}
        next_task = 0
        while next_task < len(builders) or pending:
            while idle and next_task < len(builders):
                worker = idle.pop()
                request = builders[next_task](worker)
                self.stats["parallel_bytes_sent"] += group.send(worker, request)
                self.stats["parallel_requests"] += 1
                pending[connections[worker]] = (next_task, worker)
                next_task += 1
            for connection in _connection_wait(list(pending)):
                index, worker = pending.pop(connection)
                reply, received = group.receive(worker)
                self.stats["parallel_bytes_received"] += received
                self.stats["parallel_worker_seconds"] += reply.get("seconds", 0.0)
                results[index] = reply
                idle.append(worker)
        return results

    # -- teardown ----------------------------------------------------------------

    def finish(self) -> dict:
        """Detach from the pool and return the accumulated statistics.

        The worker group itself stays up for the next engine; only this
        engine's worker-side relation state is dropped.  Safe to call on a
        never-attached engine (a fixpoint whose frontier emptied before the
        first image still reports its configuration).
        """
        if self._attached and not self.group.closed:
            self._broadcast({"op": "detach", "relation": self._relation_id})
        self._attached = False
        self._dumpers = []
        stats = dict(self.stats)
        stats["parallel_worker_seconds"] = round(stats["parallel_worker_seconds"], 6)
        return stats
