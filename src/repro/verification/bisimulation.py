"""Strong bisimulation checking by partition refinement.

The paper's RTL-level refinement obligation is phrased as a bisimulation
check: "Checking the RTL-level refinement correct amounts to proving it
bisimilar to the encoding of the communication layer".  This module decides
strong bisimilarity of two finite LTSs (after projecting their labels onto the
observed interface) using the classical partition-refinement algorithm, and
reports a distinguishing state pair when the systems are not bisimilar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .lts import LTS, Label


@dataclass
class BisimulationResult:
    """Outcome of a bisimulation check."""

    bisimilar: bool
    left_name: str
    right_name: str
    blocks: int = 0
    distinguishing_pair: Optional[tuple[int, int]] = None
    details: str = ""

    def __bool__(self) -> bool:
        return self.bisimilar

    def explain(self) -> str:
        """Readable verdict."""
        verdict = "bisimilar" if self.bisimilar else "NOT bisimilar"
        return f"{self.left_name} vs {self.right_name}: {verdict} ({self.details})"


def _partition_refinement(lts: LTS, states: Iterable[int]) -> dict[int, int]:
    """Coarsest strong-bisimulation partition of ``states`` (block index per state)."""
    state_list = sorted(set(states))
    block: dict[int, int] = {state: 0 for state in state_list}
    changed = True
    while changed:
        changed = False
        signatures: dict[int, tuple] = {}
        for state in state_list:
            moves = {(transition.label, block[transition.target]) for transition in lts.transitions_from(state)}
            signature = tuple(
                sorted(moves, key=lambda item: (sorted((n, repr(v)) for n, v in item[0]), item[1]))
            )
            signatures[state] = (block[state], signature)
        # Re-number blocks by signature.
        mapping: dict[tuple, int] = {}
        new_block: dict[int, int] = {}
        for state in state_list:
            signature = signatures[state]
            if signature not in mapping:
                mapping[signature] = len(mapping)
            new_block[state] = mapping[signature]
        if new_block != block:
            block = new_block
            changed = True
    return block


def _disjoint_union(left: LTS, right: LTS) -> tuple[LTS, dict[int, int], dict[int, int]]:
    union = LTS(f"{left.name}⊎{right.name}")
    left_map: dict[int, int] = {}
    right_map: dict[int, int] = {}
    for state in left.states:
        left_map[state] = union.add_state(("L", left.payload(state), state))
    for state in right.states:
        right_map[state] = union.add_state(("R", right.payload(state), state))
    for transition in left.transitions():
        union.add_transition(left_map[transition.source], transition.label, left_map[transition.target])
    for transition in right.transitions():
        union.add_transition(right_map[transition.source], transition.label, right_map[transition.target])
    return union, left_map, right_map


def check_bisimulation(
    left: LTS,
    right: LTS,
    observed: Optional[Iterable[str]] = None,
    reachable_only: bool = True,
) -> BisimulationResult:
    """Decide strong bisimilarity of the initial states of two LTSs.

    Args:
        left, right: the two transition systems.
        observed: if given, labels are first projected onto these signals
            (hiding the rest), which is how the paper compares levels that
            introduce extra wires (clk, rst, acknowledgements, ...).
        reachable_only: restrict the check to reachable states.
    """
    if observed is not None:
        left = left.project_labels(observed)
        right = right.project_labels(observed)
    if left.initial is None or right.initial is None:
        return BisimulationResult(False, left.name, right.name, details="missing initial state")

    if reachable_only:
        left = left.restricted_to(left.reachable())
        right = right.restricted_to(right.reachable())

    union, left_map, right_map = _disjoint_union(left, right)
    block = _partition_refinement(union, union.states)
    blocks = len(set(block.values()))
    left_block = block[left_map[left.initial]]
    right_block = block[right_map[right.initial]]
    if left_block == right_block:
        return BisimulationResult(True, left.name, right.name, blocks, details=f"{blocks} equivalence classes")

    return BisimulationResult(
        False,
        left.name,
        right.name,
        blocks,
        distinguishing_pair=(left.initial, right.initial),
        details="initial states fall in different equivalence classes",
    )


def quotient(lts: LTS) -> LTS:
    """The quotient of an LTS by its coarsest strong bisimulation."""
    restricted = lts.restricted_to(lts.reachable()) if lts.initial is not None else lts
    block = _partition_refinement(restricted, restricted.states)
    result = LTS(f"{lts.name}/≈")
    block_state: dict[int, int] = {}
    for state in restricted.states:
        index = block[state]
        if index not in block_state:
            block_state[index] = result.add_state(("block", index))
    if restricted.initial is not None:
        result.initial = block_state[block[restricted.initial]]
    seen: set[tuple[int, Label, int]] = set()
    for transition in restricted.transitions():
        key = (block[transition.source], transition.label, block[transition.target])
        if key in seen:
            continue
        seen.add(key)
        result.add_transition(block_state[key[0]], transition.label, block_state[key[2]])
    return result
