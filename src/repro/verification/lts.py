"""Labelled transition systems: the common currency of the verification layer.

The explorer turns compiled SIGNAL processes (or SpecC designs) into finite
LTSs whose transition labels are *reactions* — the set of signals present at
an instant together with their values.  Model checking, bisimulation checking
and controller synthesis all operate on this structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping, Optional

from ..core.values import ABSENT

Label = frozenset


def make_label(instant: Mapping[str, Any], observed: Optional[Iterable[str]] = None) -> Label:
    """Build a transition label from a reaction (present signals and values).

    Absent signals are omitted, so the silent reaction is the empty label.
    """
    names = set(observed) if observed is not None else set(instant)
    return frozenset(
        (name, value) for name, value in instant.items() if name in names and value is not ABSENT
    )


def label_to_dict(label: Label) -> dict[str, Any]:
    """Inverse of :func:`make_label` (absent signals omitted)."""
    return {name: value for name, value in label}


@dataclass(frozen=True)
class Transition:
    """One labelled transition ``source --label--> target``."""

    source: int
    label: Label
    target: int


class LTS:
    """A finite labelled transition system."""

    def __init__(self, name: str = "lts") -> None:
        self.name = name
        self._states: list[Hashable] = []
        self._index: dict[Hashable, int] = {}
        self._transitions: dict[int, list[Transition]] = {}
        self.initial: Optional[int] = None
        self.state_annotations: dict[int, dict[str, Any]] = {}

    # -- construction --------------------------------------------------------------

    def add_state(self, payload: Hashable, initial: bool = False) -> int:
        """Add (or retrieve) a state identified by its hashable payload."""
        index = self._index.get(payload)
        if index is None:
            index = len(self._states)
            self._states.append(payload)
            self._index[payload] = index
            self._transitions[index] = []
        if initial:
            self.initial = index
        return index

    def add_transition(self, source: int, label: Label | Mapping[str, Any], target: int) -> Transition:
        """Add a transition (labels given as mappings are converted)."""
        if not isinstance(label, frozenset):
            label = make_label(label)
        transition = Transition(source, label, target)
        self._transitions[source].append(transition)
        return transition

    def annotate(self, state: int, **annotations: Any) -> None:
        """Attach free-form annotations to a state (used by synthesis reports)."""
        self.state_annotations.setdefault(state, {}).update(annotations)

    # -- observations ----------------------------------------------------------------

    @property
    def states(self) -> range:
        """Indices of the states."""
        return range(len(self._states))

    def state_count(self) -> int:
        """Number of states."""
        return len(self._states)

    def transition_count(self) -> int:
        """Number of transitions."""
        return sum(len(ts) for ts in self._transitions.values())

    def payload(self, state: int) -> Hashable:
        """The payload used to register ``state``."""
        return self._states[state]

    def index_of(self, payload: Hashable) -> Optional[int]:
        """The state registered with ``payload``, if any."""
        return self._index.get(payload)

    def transitions_from(self, state: int) -> list[Transition]:
        """Outgoing transitions of ``state``."""
        return list(self._transitions.get(state, []))

    def transitions(self) -> Iterator[Transition]:
        """All transitions."""
        for outgoing in self._transitions.values():
            yield from outgoing

    def successors(self, state: int) -> set[int]:
        """Target states of the outgoing transitions of ``state``."""
        return {t.target for t in self._transitions.get(state, [])}

    def predecessors(self, state: int) -> set[int]:
        """States with a transition into ``state``."""
        return {t.source for t in self.transitions() if t.target == state}

    def alphabet(self) -> set[Label]:
        """The set of labels used by the transitions."""
        return {t.label for t in self.transitions()}

    def deadlocks(self) -> set[int]:
        """Reachable states with no outgoing transition."""
        return {state for state in self.reachable() if not self._transitions.get(state)}

    # -- traversals --------------------------------------------------------------------

    def reachable(self, start: Optional[int] = None) -> set[int]:
        """States reachable from ``start`` (default: the initial state)."""
        if start is None:
            start = self.initial
        if start is None:
            return set()
        seen = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for transition in self._transitions.get(state, []):
                if transition.target not in seen:
                    seen.add(transition.target)
                    frontier.append(transition.target)
        return seen

    def path_to(self, predicate: Callable[[int], bool]) -> Optional[list[Transition]]:
        """A shortest transition path from the initial state to a state satisfying ``predicate``."""
        if self.initial is None:
            return None
        if predicate(self.initial):
            return []
        parents: dict[int, Transition] = {}
        frontier = [self.initial]
        seen = {self.initial}
        while frontier:
            next_frontier: list[int] = []
            for state in frontier:
                for transition in self._transitions.get(state, []):
                    if transition.target in seen:
                        continue
                    seen.add(transition.target)
                    parents[transition.target] = transition
                    if predicate(transition.target):
                        path = [transition]
                        while path[0].source != self.initial:
                            path.insert(0, parents[path[0].source])
                        return path
                    next_frontier.append(transition.target)
            frontier = next_frontier
        return None

    def path_to_reaction(self, predicate: Callable[[dict[str, Any]], bool]) -> Optional[list[Transition]]:
        """A shortest transition path ending with a reaction satisfying ``predicate``.

        BFS with parent pointers from the initial state: source states are
        examined layer by layer, so the first satisfying transition found has
        a minimal-depth source and the returned path (prefix to the source
        plus the satisfying transition itself) has minimal length.  This is
        the explicit engine's counterexample-trace skeleton — ``path_to``
        targets *states*, this targets *labels*.
        """
        if self.initial is None:
            return None
        parents: dict[int, Transition] = {}
        frontier = [self.initial]
        seen = {self.initial}
        while frontier:
            next_frontier: list[int] = []
            for state in frontier:
                for transition in self._transitions.get(state, []):
                    if predicate(label_to_dict(transition.label)):
                        path = [transition]
                        while path[0].source != self.initial:
                            path.insert(0, parents[path[0].source])
                        return path
                    if transition.target not in seen:
                        seen.add(transition.target)
                        parents[transition.target] = transition
                        next_frontier.append(transition.target)
            frontier = next_frontier
        return None

    # -- transformations ------------------------------------------------------------------

    def relabel(self, transform: Callable[[Label], Label]) -> "LTS":
        """A copy of the LTS with every label rewritten by ``transform``."""
        copy = LTS(self.name)
        for payload in self._states:
            copy.add_state(payload)
        copy.initial = self.initial
        for transition in self.transitions():
            copy.add_transition(transition.source, transform(transition.label), transition.target)
        copy.state_annotations = {s: dict(a) for s, a in self.state_annotations.items()}
        return copy

    def project_labels(self, observed: Iterable[str]) -> "LTS":
        """Restrict every label to the observed signals (others hidden)."""
        names = set(observed)
        return self.relabel(lambda label: frozenset((n, v) for n, v in label if n in names))

    def restricted_to(self, states: Iterable[int]) -> "LTS":
        """The sub-LTS induced by ``states`` (transitions inside the set only)."""
        keep = set(states)
        copy = LTS(self.name)
        mapping: dict[int, int] = {}
        for state in sorted(keep):
            mapping[state] = copy.add_state(self._states[state])
        if self.initial in keep:
            copy.initial = mapping[self.initial]
        for transition in self.transitions():
            if transition.source in keep and transition.target in keep:
                copy.add_transition(mapping[transition.source], transition.label, mapping[transition.target])
        return copy

    # -- rendering ----------------------------------------------------------------------------

    def render_label(self, label: Label) -> str:
        """Readable rendering of a label."""
        if not label:
            return "τ"
        return ",".join(f"{n}={v}" for n, v in sorted(label, key=lambda kv: kv[0]))

    def to_dot(self) -> str:
        """GraphViz rendering (for documentation and debugging)."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for state in self.states:
            shape = "doublecircle" if state == self.initial else "circle"
            lines.append(f'  s{state} [label="{state}", shape={shape}];')
        for transition in self.transitions():
            lines.append(
                f'  s{transition.source} -> s{transition.target} [label="{self.render_label(transition.label)}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"LTS({self.name}, states={self.state_count()}, transitions={self.transition_count()})"
