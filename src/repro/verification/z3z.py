"""Polynomial algebra over Z/3Z — the encoding used by the Sigali model checker.

The paper delegates refinement (model) checking to Sigali, which represents
SIGNAL processes as *polynomial dynamical systems over Z/3Z*: every
boolean/event signal ``x`` is encoded by a ternary variable with

* ``0``  — the signal is absent,
* ``1``  — the signal is present with value *true*,
* ``-1`` (≡ 2 mod 3) — the signal is present with value *false*,

so that ``x²`` is the characteristic function of presence, and every SIGNAL
equation over booleans becomes a polynomial constraint.  This module provides
the polynomial algebra itself (canonical form with exponents reduced by
``x³ = x``), the standard encodings of the SIGNAL primitives, and small-system
solving by enumeration, which is sufficient for the control skeletons of the
paper's case study.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence

from ..core.values import ABSENT, EVENT

#: The three field elements; -1 is represented canonically as 2.
FIELD = (0, 1, 2)

#: Readable aliases used by encoders/decoders.
ABSENT_CODE = 0
TRUE_CODE = 1
FALSE_CODE = 2  # i.e. -1 mod 3


def to_code(value: Any) -> int:
    """Encode a signal status (ABSENT / truth value) as a Z/3Z element."""
    if value is ABSENT:
        return ABSENT_CODE
    if value is EVENT or value is True or value == 1:
        return TRUE_CODE
    if value is False or value == 0:
        return FALSE_CODE
    raise ValueError(f"cannot encode {value!r} over Z/3Z (boolean/event statuses only)")


def from_code(code: int) -> Any:
    """Decode a Z/3Z element into a signal status."""
    code %= 3
    if code == ABSENT_CODE:
        return ABSENT
    return True if code == TRUE_CODE else False


def _normalise_exponent(exponent: int) -> int:
    """Reduce an exponent using ``x³ = x`` (valid for every element of Z/3Z)."""
    if exponent <= 2:
        return exponent
    # x^3 = x, hence exponents collapse onto {1, 2} by parity beyond 0.
    return 2 if exponent % 2 == 0 else 1


class Polynomial:
    """A multivariate polynomial over Z/3Z in canonical form.

    The canonical form maps monomials (sorted tuples of ``(variable, exponent)``
    with exponents in ``{1, 2}``) to non-zero coefficients in ``{1, 2}``.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[tuple[tuple[str, int], ...], int] | None = None) -> None:
        canonical: dict[tuple[tuple[str, int], ...], int] = {}
        for monomial, coefficient in (terms or {}).items():
            coefficient %= 3
            if coefficient == 0:
                continue
            merged: dict[str, int] = {}
            for variable, exponent in monomial:
                merged[variable] = _normalise_exponent(merged.get(variable, 0) + exponent)
            key = tuple(sorted((v, e) for v, e in merged.items() if e))
            canonical[key] = (canonical.get(key, 0) + coefficient) % 3
            if canonical[key] == 0:
                del canonical[key]
        self._terms = canonical

    # -- constructors --------------------------------------------------------------

    @staticmethod
    def zero() -> "Polynomial":
        """The zero polynomial."""
        return Polynomial()

    @staticmethod
    def constant(value: int) -> "Polynomial":
        """A constant polynomial."""
        return Polynomial({(): value % 3})

    @staticmethod
    def variable(name: str) -> "Polynomial":
        """The polynomial ``name``."""
        return Polynomial({((name, 1),): 1})

    # -- observations ----------------------------------------------------------------

    @property
    def terms(self) -> dict[tuple[tuple[str, int], ...], int]:
        """The canonical monomial → coefficient mapping."""
        return dict(self._terms)

    def variables(self) -> set[str]:
        """Variables occurring in the polynomial."""
        return {variable for monomial in self._terms for variable, _ in monomial}

    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self._terms

    def degree(self) -> int:
        """Total degree (0 for constants and the zero polynomial)."""
        return max((sum(e for _, e in monomial) for monomial in self._terms), default=0)

    # -- algebra ------------------------------------------------------------------------

    def __add__(self, other: "Polynomial | int") -> "Polynomial":
        other = other if isinstance(other, Polynomial) else Polynomial.constant(other)
        terms = dict(self._terms)
        for monomial, coefficient in other._terms.items():
            terms[monomial] = (terms.get(monomial, 0) + coefficient) % 3
        return Polynomial(terms)

    def __radd__(self, other: int) -> "Polynomial":
        return self + other

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: (-c) % 3 for m, c in self._terms.items()})

    def __sub__(self, other: "Polynomial | int") -> "Polynomial":
        other = other if isinstance(other, Polynomial) else Polynomial.constant(other)
        return self + (-other)

    def __rsub__(self, other: int) -> "Polynomial":
        return Polynomial.constant(other) - self

    def __mul__(self, other: "Polynomial | int") -> "Polynomial":
        other = other if isinstance(other, Polynomial) else Polynomial.constant(other)
        terms: dict[tuple[tuple[str, int], ...], int] = {}
        for left_monomial, left_coefficient in self._terms.items():
            for right_monomial, right_coefficient in other._terms.items():
                key = left_monomial + right_monomial
                coefficient = (left_coefficient * right_coefficient) % 3
                accumulated = Polynomial({key: coefficient})
                for monomial, value in accumulated._terms.items():
                    terms[monomial] = (terms.get(monomial, 0) + value) % 3
        return Polynomial(terms)

    def __rmul__(self, other: int) -> "Polynomial":
        return self * other

    def __pow__(self, exponent: int) -> "Polynomial":
        if exponent < 0:
            raise ValueError("negative exponents are not defined")
        result = Polynomial.constant(1)
        for _ in range(exponent):
            result = result * self
        return result

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._terms.items())))

    # -- evaluation / substitution ----------------------------------------------------------

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Value of the polynomial under a total assignment of its variables."""
        total = 0
        for monomial, coefficient in self._terms.items():
            value = coefficient
            for variable, exponent in monomial:
                if variable not in assignment:
                    raise KeyError(f"assignment misses variable {variable!r}")
                value = (value * pow(assignment[variable] % 3, exponent, 3)) % 3
            total = (total + value) % 3
        return total

    def substitute(self, mapping: Mapping[str, "Polynomial | int"]) -> "Polynomial":
        """Substitute polynomials (or constants) for variables."""
        result = Polynomial.zero()
        for monomial, coefficient in self._terms.items():
            term = Polynomial.constant(coefficient)
            for variable, exponent in monomial:
                replacement = mapping.get(variable, Polynomial.variable(variable))
                if isinstance(replacement, int):
                    replacement = Polynomial.constant(replacement)
                term = term * (replacement ** exponent)
            result = result + term
        return result

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for monomial, coefficient in sorted(self._terms.items()):
            factors = [f"{v}" if e == 1 else f"{v}^{e}" for v, e in monomial]
            body = "*".join(factors) if factors else "1"
            parts.append(body if coefficient == 1 else f"{coefficient}*{body}")
        return " + ".join(parts)


# --------------------------------------------------------------------------- encodings

def presence(name: str) -> Polynomial:
    """``x²``: 1 when the signal is present, 0 when absent."""
    x = Polynomial.variable(name)
    return x * x


def absence(name: str) -> Polynomial:
    """``1 - x²``: 1 when the signal is absent."""
    return Polynomial.constant(1) - presence(name)


def is_true(name: str) -> Polynomial:
    """``-x(x+1)`` ≡ ``-x - x²``: 1 exactly when the signal is present-true."""
    x = Polynomial.variable(name)
    return -(x * (x + 1))


def is_false(name: str) -> Polynomial:
    """``x - x²``: 1 exactly when the signal is present-false."""
    x = Polynomial.variable(name)
    return x - x * x


def synchronous_constraint(left: str, right: str) -> Polynomial:
    """``x² - y²``: zero exactly when the two signals are synchronous."""
    return presence(left) - presence(right)


def when_constraint(result: str, operand: str, condition: str) -> Polynomial:
    """Constraint for ``result := operand when condition``.

    The Sigali encoding: ``result = operand * (-condition - condition²)``.
    """
    operand_poly = Polynomial.variable(operand)
    condition_poly = Polynomial.variable(condition)
    sampled = operand_poly * (-condition_poly - condition_poly * condition_poly)
    return Polynomial.variable(result) - sampled


def default_constraint(result: str, left: str, right: str) -> Polynomial:
    """Constraint for ``result := left default right``.

    The Sigali encoding: ``result = left + (1 - left²) * right``.
    """
    left_poly = Polynomial.variable(left)
    right_poly = Polynomial.variable(right)
    merged = left_poly + (Polynomial.constant(1) - left_poly * left_poly) * right_poly
    return Polynomial.variable(result) - merged


def not_constraint(result: str, operand: str) -> Polynomial:
    """Constraint for ``result := not operand`` (``result = -operand``)."""
    return Polynomial.variable(result) + Polynomial.variable(operand)


def and_constraint(result: str, left: str, right: str) -> Polynomial:
    """Constraint for ``result := left and right`` (Sigali: ``xy(xy - x - y - 1)``).

    Both operands must be present; the standard encoding is
    ``result = xy(xy - x - y - 1)``.
    """
    x = Polynomial.variable(left)
    y = Polynomial.variable(right)
    xy = x * y
    return Polynomial.variable(result) - xy * (xy - x - y - 1)


def or_constraint(result: str, left: str, right: str) -> Polynomial:
    """Constraint for ``result := left or right`` (``xy(1 - x - y - xy)``)."""
    x = Polynomial.variable(left)
    y = Polynomial.variable(right)
    xy = x * y
    return Polynomial.variable(result) - xy * (1 - x - y - xy)


# --------------------------------------------------------------------------- systems

class PolynomialSystem:
    """A finite set of polynomial constraints ``p_i = 0`` over Z/3Z."""

    def __init__(self, constraints: Iterable[Polynomial] = ()) -> None:
        self.constraints: list[Polynomial] = [c for c in constraints]

    def add(self, constraint: Polynomial) -> None:
        """Add a constraint ``constraint = 0``."""
        self.constraints.append(constraint)

    def variables(self) -> list[str]:
        """All variables, sorted."""
        names: set[str] = set()
        for constraint in self.constraints:
            names |= constraint.variables()
        return sorted(names)

    def holds(self, assignment: Mapping[str, int]) -> bool:
        """True when every constraint evaluates to zero."""
        return all(c.evaluate(assignment) == 0 for c in self.constraints)

    def solutions(self, variables: Optional[Sequence[str]] = None) -> Iterator[dict[str, int]]:
        """Enumerate all solutions over the given (default: all) variables."""
        names = list(variables) if variables is not None else self.variables()
        for values in product(FIELD, repeat=len(names)):
            assignment = dict(zip(names, values))
            if self.holds(assignment):
                yield assignment

    def solution_count(self) -> int:
        """Number of solutions (over the system's own variables)."""
        return sum(1 for _ in self.solutions())

    def is_satisfiable(self) -> bool:
        """True when at least one assignment satisfies every constraint."""
        return next(self.solutions(), None) is not None

    def implies(self, property_polynomial: Polynomial) -> bool:
        """True when every solution also satisfies ``property_polynomial = 0``."""
        names = sorted(set(self.variables()) | property_polynomial.variables())
        for solution in self.solutions(names):
            if property_polynomial.evaluate(solution) != 0:
                return False
        return True
