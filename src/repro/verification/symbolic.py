"""BDD-backed symbolic reachability and invariant checking.

This module is the symbolic half of the verification pipeline — the
construction Sigali actually performs, where the explicit explorer
(:mod:`repro.verification.explorer`) enumerates states one by one.  A SIGNAL
process's boolean/event control skeleton is first abstracted into a
polynomial dynamical system over Z/3Z (:mod:`repro.verification.encoding`);
here every ternary variable ``x`` is *bit-blasted* into two boolean
variables, ``x.p`` (presence) and ``x.v`` (carried truth value), with the
well-formedness invariant ``¬x.p ⇒ ¬x.v`` so state valuations are in
bijection with ternary valuations:

====== ======= =======
code    x.p     x.v
====== ======= =======
0       false   false
1       true    true
2       true    false
====== ======= =======

Every polynomial constraint becomes a BDD by enumerating the (few) ternary
variables of its own support; their conjunction is the instantaneous relation
``T_inst(state, signals)``, and the next-state polynomials extend it to the
full transition relation ``T(state, signals, state')``.  Reachability is then
the least fixed point of relational image computation::

    reach₀ = init;   reachₖ₊₁ = reachₖ ∪ rename(∃ signals, state . reachₖ ∧ T)

using the quantification / renaming / ``and_exists`` primitives of
:mod:`repro.clocks.bdd`.  The frontier never enumerates individual states, so
designs whose reachable set is far beyond the explicit engine's
``max_states`` bound (e.g. the 2^n states of an n-stage boolean shift
register) are handled in time proportional to the BDD sizes instead —
``benchmarks/bench_symbolic_reachability.py`` measures the crossover.

Invariant checking, reaction reachability and controller synthesis are
offered through the same :class:`~repro.verification.reachability.Reachability`
interface as the explicit engines, which is what
``tests/test_symbolic_vs_explicit.py`` exploits to cross-check the two
implementations reaction for reaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

from ..clocks.bdd import BDDManager, BDDNode
from ..core.values import ABSENT
from ..signal.ast import ProcessDefinition
from ..simulation.compiler import CompiledProcess
from .encoding import PolynomialDynamicalSystem, encode_process
from .invariants import CheckResult
from .reachability import (
    BackendCapabilities,
    ControlVerdict,
    Reachability,
    ReactionPredicate,
    Trace,
    TraceStep,
)
from .z3z import FIELD, Polynomial


class SymbolicEncodingError(Exception):
    """Raised when a polynomial's support is too wide to bit-blast locally."""


@dataclass
class SymbolicOptions:
    """Parameters of a symbolic exploration.

    Attributes:
        max_iterations: bound on image-computation rounds (None = run to the
            fixpoint; the fixpoint always terminates on these finite systems).
        max_support: per-polynomial support width accepted by the local
            enumeration that builds constraint BDDs (3^width assignments).
    """

    max_iterations: Optional[int] = None
    max_support: int = 12


def _presence(name: str) -> str:
    return f"{name}.p"


def _value(name: str) -> str:
    return f"{name}.v"


def _primed(bit: str) -> str:
    return f"{bit}'"


class RelationalFixpointEngine:
    """The image-fixpoint core shared by the symbolic engines.

    Subclasses provide the relation itself — ``manager``, ``instantaneous``,
    ``transition``, ``initial``, the ``signal_bits`` / ``state_bits`` /
    ``_unprime_map`` layout and a ``decode_reaction`` — and inherit image
    computation, the reachability fixpoint loop, state counting and reaction
    enumeration.  Both the Z/3Z boolean engine and the finite-integer engine
    (:mod:`repro.verification.symbolic_int`) run on this exact loop, so a
    change to the fixpoint (e.g. keeping per-iteration frontiers for
    counterexample paths) lands in both at once.
    """

    def image(self, states: BDDNode) -> BDDNode:
        """Successors of ``states`` under the transition relation, unprimed."""
        quantified = self.signal_bits + self.state_bits
        successors = self.manager.and_exists(states, self.transition, quantified)
        return self.manager.rename(successors, self._unprime_map)

    def preimage(self, states: BDDNode) -> BDDNode:
        """Predecessors of ``states`` under the transition relation.

        The backward counterpart of :meth:`image` — one
        :meth:`~repro.clocks.bdd.BDDManager.preimage` relational product that
        renames the target set onto the primed variables and quantifies the
        signal and primed state bits away.  Trace extraction walks the stored
        frontier rings back through it.
        """
        return self.manager.preimage(
            self.transition, states, self._prime_map, self.signal_bits + self.primed_bits
        )

    def _reach_fixpoint(
        self, max_iterations: Optional[int]
    ) -> tuple[BDDNode, int, bool, list[BDDNode]]:
        """Least fixpoint of image computation from the initial state.

        Returns ``(reach, iterations, converged, rings)`` — ``converged`` is
        False when ``max_iterations`` stopped the loop before the frontier
        emptied, and ``rings`` are the per-iteration discovery frontiers
        (``rings[0]`` is the initial state set, ``rings[k]`` the states first
        reached after exactly k images): the onion rings counterexample
        extraction walks backward through.  Keeping them is free — they are
        exactly the frontier BDDs the loop already computes.
        """
        manager = self.manager
        reach = self.initial
        frontier = self.initial
        rings = [self.initial]
        iterations = 0
        while frontier is not manager.false:
            if max_iterations is not None and iterations >= max_iterations:
                return reach, iterations, False, rings
            successors = self.image(frontier)
            frontier = manager.diff(successors, reach)
            reach = manager.disj(reach, frontier)
            if frontier is not manager.false:
                rings.append(frontier)
            iterations += 1
        return reach, iterations, True, rings

    def count_states(self, states: BDDNode) -> int:
        """Number of state valuations in a state set (model counting)."""
        return self.manager.count_satisfying(states, self.state_bits)

    def reactions_of(self, states: BDDNode) -> Iterator[dict[str, Any]]:
        """Enumerate decoded admissible reactions of a symbolic state set.

        The state bits are quantified out first, so enumeration yields exactly
        one model per distinct reaction however many states admit it.
        """
        admissible = self.manager.and_exists(states, self.instantaneous, self.state_bits)
        for model in self.manager.satisfying_assignments(admissible, self.signal_bits):
            yield self.decode_reaction(model)


class SymbolicEngine(RelationalFixpointEngine):
    """Boolean transition-relation encoding of a polynomial dynamical system."""

    def __init__(
        self,
        source: Union[ProcessDefinition, CompiledProcess, PolynomialDynamicalSystem],
        options: Optional[SymbolicOptions] = None,
        manager: Optional[BDDManager] = None,
    ) -> None:
        if isinstance(source, CompiledProcess):
            source = encode_process(source.definition)
        elif isinstance(source, ProcessDefinition):
            source = encode_process(source)
        self.system: PolynomialDynamicalSystem = source
        self.options = options or SymbolicOptions()
        self.manager = manager or BDDManager()
        self._declare_variables()
        self._build_relation()

    @property
    def name(self) -> str:
        """Name of the encoded process (shared engine interface)."""
        return self.system.name

    # -- variable layout ---------------------------------------------------------

    def _declare_variables(self) -> None:
        """Declare BDD bits in constraint-locality order.

        Variables that occur in the same constraint are declared next to each
        other (first-use order over the constraint list), which keeps the
        relation BDD small for pipelined designs such as shift registers; a
        state variable's primed bits sit directly below its unprimed ones.
        """
        system = self.system
        order: list[str] = []
        seen: set[str] = set()

        def note(name: str) -> None:
            if name not in seen:
                seen.add(name)
                order.append(name)

        for constraint in system.constraints.constraints:
            for name in sorted(constraint.variables()):
                note(name)
        for state, polynomial in system.transitions.items():
            note(state)
            for name in sorted(polynomial.variables()):
                note(name)
        for name in system.signal_variables:
            note(name)
        for name in system.state_variables:
            note(name)

        self.state_names = list(system.state_variables)
        self.signal_names = list(system.signal_variables)
        states = set(self.state_names)
        self.signal_bits: list[str] = []
        self.state_bits: list[str] = []
        self.primed_bits: list[str] = []
        for name in order:
            bits = (_presence(name), _value(name))
            for bit in bits:
                self.manager.declare(bit)
            if name in states:
                self.state_bits.extend(bits)
                for bit in bits:
                    self.manager.declare(_primed(bit))
                    self.primed_bits.append(_primed(bit))
            else:
                self.signal_bits.extend(bits)
        self._prime_map = {bit: _primed(bit) for bit in self.state_bits}
        self._unprime_map = {primed: bit for bit, primed in self._prime_map.items()}

    # -- encoding helpers ----------------------------------------------------------

    def code_cube(self, name: str, code: int, primed: bool = False) -> BDDNode:
        """The cube of presence/value bits encoding ternary ``code`` for ``name``."""
        presence_bit, value_bit = _presence(name), _value(name)
        if primed:
            presence_bit, value_bit = _primed(presence_bit), _primed(value_bit)
        code %= 3
        return self.manager.cube({presence_bit: code != 0, value_bit: code == 1})

    def _assignment_cube(self, assignment: Mapping[str, int]) -> BDDNode:
        cube = self.manager.true
        for name, code in assignment.items():
            cube = self.manager.conj(cube, self.code_cube(name, code))
        return cube

    def _polynomial_bdd(self, polynomial: Polynomial, next_state: Optional[str] = None) -> BDDNode:
        """BDD of ``polynomial = 0``, or of ``next_state' = polynomial`` when given.

        Built by enumerating the ternary assignments of the polynomial's own
        support — each equation touches only a handful of signals, so this
        local enumeration stays tiny even when the global state space is huge.
        """
        support = sorted(polynomial.variables())
        if len(support) > self.options.max_support:
            raise SymbolicEncodingError(
                f"polynomial support {len(support)} exceeds max_support="
                f"{self.options.max_support}: {polynomial!r}"
            )
        result = self.manager.false
        for values in product(FIELD, repeat=len(support)):
            assignment = dict(zip(support, values))
            outcome = polynomial.evaluate(assignment)
            if next_state is None:
                if outcome != 0:
                    continue
                cube = self._assignment_cube(assignment)
            else:
                cube = self.manager.conj(
                    self._assignment_cube(assignment),
                    self.code_cube(next_state, outcome, primed=True),
                )
            result = self.manager.disj(result, cube)
        return result

    def _well_formed(self, names: Sequence[str]) -> BDDNode:
        """``¬p ⇒ ¬v`` for every listed ternary variable."""
        manager = self.manager
        constraint = manager.true
        for name in names:
            implied = manager.implies(manager.var(_value(name)), manager.var(_presence(name)))
            constraint = manager.conj(constraint, implied)
        return constraint

    def _build_relation(self) -> None:
        manager = self.manager
        system = self.system
        instantaneous = self._well_formed(self.signal_names + self.state_names)
        for constraint in system.constraints.constraints:
            instantaneous = manager.conj(instantaneous, self._polynomial_bdd(constraint))
        self.instantaneous = instantaneous

        transition = instantaneous
        for state, polynomial in system.transitions.items():
            transition = manager.conj(transition, self._polynomial_bdd(polynomial, next_state=state))
        self.transition = transition

        self.initial = manager.conj(
            self._well_formed(self.state_names),
            self._assignment_cube(system.initial_state()),
        )

    # -- predicates ------------------------------------------------------------------

    def predicate_bdd(self, predicate: ReactionPredicate) -> BDDNode:
        """Compile a reaction predicate onto the signal presence/value bits."""
        manager = self.manager
        kind = predicate.kind
        if kind == "const":
            return manager.true if predicate.operands[0] else manager.false
        if kind == "not":
            return manager.neg(self.predicate_bdd(predicate.operands[0]))
        if kind == "and":
            return manager.conj_all(self.predicate_bdd(p) for p in predicate.operands)
        if kind == "or":
            return manager.disj_all(self.predicate_bdd(p) for p in predicate.operands)
        if kind == "value":
            raise SymbolicEncodingError(
                f"{self.system.name}: value predicates (on signal "
                f"{predicate.operands[0]!r}) test carried data, which the boolean "
                "abstraction does not represent — use an explicit backend"
            )
        name = predicate.operands[0]
        if name not in self.system.signal_variables:
            raise KeyError(f"{self.system.name}: predicate mentions unknown signal {name!r}")
        presence = manager.var(_presence(name))
        if kind == "present":
            return presence
        value = manager.var(_value(name))
        if kind == "true":
            return manager.conj(presence, value)
        return manager.conj(presence, manager.neg(value))

    def invariant_bdd(self, invariant: Polynomial) -> BDDNode:
        """BDD of ``invariant = 0``, for Sigali-style polynomial objectives."""
        return self._polynomial_bdd(invariant)

    # -- image computation -----------------------------------------------------------

    def reach(self) -> "SymbolicReachability":
        """Least fixpoint of image computation from the initial state."""
        reach, iterations, converged, rings = self._reach_fixpoint(self.options.max_iterations)
        return SymbolicReachability(self, reach, iterations, converged, tuple(rings))

    def decode_reaction(self, assignment: Mapping[str, bool]) -> dict[str, Any]:
        """Signal statuses of a bit-level satisfying assignment."""
        decoded: dict[str, Any] = {}
        for name in self.signal_names:
            if not assignment.get(_presence(name), False):
                decoded[name] = ABSENT
            else:
                decoded[name] = bool(assignment.get(_value(name), False))
        return decoded

    def decode_state(self, assignment: Mapping[str, bool]) -> dict[str, int]:
        """Ternary codes of the state variables in a bit-level assignment."""
        state: dict[str, int] = {}
        for name in self.state_names:
            if not assignment.get(_presence(name), False):
                state[name] = 0
            else:
                state[name] = 1 if assignment.get(_value(name), False) else 2
        return state


@dataclass
class SymbolicReachability(Reachability):
    """A symbolically computed reachable state set, behind the shared interface.

    ``frontiers`` keeps the per-iteration discovery rings of the fixpoint
    (``frontiers[0]`` = initial states): they cost nothing beyond a tuple of
    references the loop computed anyway, and they are what lets
    :meth:`trace_to` extract a concrete counterexample *path* by walking
    backward ring by ring instead of re-running the forward search.
    """

    engine: SymbolicEngine
    states: BDDNode
    iterations: int
    fixpoint: bool = True
    frontiers: tuple[BDDNode, ...] = ()

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        """The BDD fixpoint: boolean/event skeleton only, exhaustive (no
        state bound — ``max_iterations`` is off by default), with symbolic
        supervisory synthesis and ring-walk counterexample traces."""
        return BackendCapabilities(integer_data=False, bounded=False, synthesis=True, traces=True)

    @property
    def state_count(self) -> int:
        """Number of reachable state valuations (model counting, no enumeration)."""
        return self.engine.count_states(self.states)

    @property
    def complete(self) -> bool:
        """False when ``max_iterations`` stopped the fixpoint early."""
        return self.fixpoint

    def _witness(self, condition: BDDNode, name: str, found_holds: bool, missing) -> CheckResult:
        manager = self.engine.manager
        hit = manager.conj_all([self.states, self.engine.instantaneous, condition])
        if manager.is_false(hit):
            # "No reaction satisfies the condition" is only certain when the
            # fixpoint actually converged.  ``missing`` is a thunk so the
            # model count it typically reports is only paid on this branch.
            self._require_complete(name)
            return CheckResult(not found_holds, name, details=missing())
        bits = self.engine.signal_bits + self.engine.state_bits
        model = next(manager.satisfying_assignments(hit, bits))
        reaction = {k: v for k, v in self.engine.decode_reaction(model).items() if v is not ABSENT}
        return CheckResult(found_holds, name, details=f"witness reaction {reaction}")

    def _validate_predicate(self, predicate: ReactionPredicate) -> None:
        engine = self.engine
        self._validate_signals(predicate.signals(), engine.signal_names, engine.name, "predicate")

    def check_invariant(self, predicate: ReactionPredicate, name: str = "invariant") -> CheckResult:
        """AG over reactions: no reachable reaction violates ``predicate``."""
        self._validate_predicate(predicate)
        violating = self.engine.manager.neg(self.engine.predicate_bdd(predicate))
        return self._witness(
            violating, name, found_holds=False, missing=lambda: f"{self.state_count} reachable states"
        )

    def check_reachable(self, predicate: ReactionPredicate, name: str = "reachability") -> CheckResult:
        """EF over reactions: some reachable reaction satisfies ``predicate``."""
        self._validate_predicate(predicate)
        return self._witness(
            self.engine.predicate_bdd(predicate),
            name,
            found_holds=True,
            missing=lambda: "no reachable reaction satisfies the predicate",
        )

    def trace_to(self, predicate: ReactionPredicate, name: str = "trace") -> Optional[Trace]:
        """A trace to a reaction satisfying ``predicate``, by backward ring walk.

        Forward information is already there: the fixpoint stored one frontier
        BDD per iteration (:attr:`frontiers`).  Extraction finds the earliest
        ring admitting a satisfying reaction, picks one concrete (state,
        reaction) model there with the witness-synthesis machinery, then walks
        back ring by ring — each step one :meth:`~.SymbolicEngine.preimage`
        ``and_exists`` product intersected with the previous ring, from which
        one concrete predecessor state and one connecting reaction are
        extracted.  The trace length equals the ring index plus one, so no
        state is ever enumerated outside the path itself.
        """
        self._validate_predicate(predicate)
        return self._extract_trace(self.engine.predicate_bdd(predicate), name)

    def _extract_trace(self, condition: BDDNode, name: str) -> Optional[Trace]:
        engine = self.engine
        manager = engine.manager
        hit = manager.conj_all([self.states, engine.instantaneous, condition])
        if manager.is_false(hit):
            self._require_complete(name)
            return None
        if not self.frontiers:
            raise NotImplementedError(
                f"{name}: this result carries no frontier rings (hand-built?); "
                "recompute it via the engine's reach() to enable trace extraction"
            )
        ring_index = 0
        ring_hit = manager.false
        for index, ring in enumerate(self.frontiers):
            ring_hit = manager.conj(ring, hit)
            if not manager.is_false(ring_hit):
                ring_index = index
                break
        bits = engine.signal_bits + engine.state_bits
        model = next(manager.satisfying_assignments(ring_hit, bits))

        # Walk the rings backward from the state the satisfying reaction fires
        # in, extracting one concrete predecessor and connecting reaction per
        # ring.  The steps come out in reverse order.
        steps: list[TraceStep] = []
        cursor = {bit: model[bit] for bit in engine.state_bits}
        for index in range(ring_index, 0, -1):
            cursor_cube = manager.cube(cursor)
            predecessors = manager.conj(engine.preimage(cursor_cube), self.frontiers[index - 1])
            previous = next(manager.satisfying_assignments(predecessors, engine.state_bits))
            step_relation = manager.exists(
                manager.conj_all(
                    [
                        engine.transition,
                        manager.cube(previous),
                        manager.rename(cursor_cube, engine._prime_map),
                    ]
                ),
                engine.primed_bits,
            )
            reaction_model = next(manager.satisfying_assignments(step_relation, bits))
            steps.append(
                TraceStep(engine.decode_reaction(reaction_model), engine.decode_state(cursor))
            )
            cursor = previous
        steps.reverse()
        steps.append(TraceStep(engine.decode_reaction(model), self._successor_of(model)))
        return Trace(tuple(steps), name)

    def _successor_of(self, model: Mapping[str, bool]) -> Optional[dict[str, Any]]:
        """The decoded successor state of one concrete (state, reaction) model.

        ``None`` when the transition relation admits no successor for the
        model — possible only for engines whose relation guards memory
        updates (a finite-integer reaction clipping a declared range).
        """
        engine = self.engine
        manager = engine.manager
        primed = manager.and_exists(
            manager.cube(model), engine.transition, engine.signal_bits + engine.state_bits
        )
        if manager.is_false(primed):
            return None
        successor = manager.rename(primed, engine._unprime_map)
        assignment = next(manager.satisfying_assignments(successor, engine.state_bits))
        return engine.decode_state(assignment)

    def check_polynomial_invariant(self, invariant: Polynomial, name: str = "invariant") -> CheckResult:
        """Sigali-style objective: ``invariant = 0`` on every reachable reaction."""
        system = self.engine.system
        known = set(system.signal_variables) | set(system.state_variables)
        self._validate_signals(invariant.variables(), known, system.name, "polynomial invariant")
        violating = self.engine.manager.neg(self.engine.invariant_bdd(invariant))
        return self._witness(
            violating, name, found_holds=False, missing=lambda: f"{self.state_count} reachable states"
        )

    def synthesise(
        self,
        safe: ReactionPredicate,
        controllable: Sequence[str],
        ensure_nonblocking: bool = True,
    ) -> ControlVerdict:
        """Symbolic supervisory-control synthesis (greatest controllable invariant).

        Mirrors the explicit construction of :mod:`.synthesis`: a state is
        unsafe when it is the target of a reachable reaction violating
        ``safe``; a reaction is uncontrollable when every ``controllable``
        signal is absent; kept states must not let an uncontrollable reaction
        escape and (optionally) must keep at least one allowed reaction.

        Raises:
            BoundReached: when the reach fixpoint did not converge — the
                greatest-controllable-invariant fixpoint would treat every
                reachable-but-unexplored state as an escape target and could
                report "no controller" for a controllable plant.
        """
        engine = self.engine
        manager = engine.manager
        self._validate_predicate(safe)
        self._validate_signals(
            controllable,
            engine.signal_names,
            engine.name,
            "controllable set",
            error=ValueError,
        )
        self._require_complete("synthesis")

        quantified = engine.signal_bits + engine.state_bits
        transition = manager.conj(engine.transition, self.states)
        bad_reaction = manager.neg(engine.predicate_bdd(safe))
        bad_targets = manager.rename(
            manager.and_exists(bad_reaction, transition, quantified), engine._unprime_map
        )
        kept = manager.diff(self.states, bad_targets)

        uncontrollable = manager.conj_all(
            manager.nvar(_presence(name)) for name in controllable
        )
        uncontrolled_transition = manager.conj(transition, uncontrollable)
        if ensure_nonblocking:
            has_outgoing = manager.exists(transition, engine.signal_bits + engine.primed_bits)

        iterations = 0
        while True:
            iterations += 1
            kept_primed = manager.rename(kept, engine._prime_map)
            escape = manager.and_exists(
                uncontrolled_transition,
                manager.neg(kept_primed),
                engine.signal_bits + engine.primed_bits,
            )
            refined = manager.diff(kept, escape)
            if ensure_nonblocking:
                alive = manager.and_exists(
                    transition,
                    manager.rename(refined, engine._prime_map),
                    engine.signal_bits + engine.primed_bits,
                )
                refined = manager.conj(refined, manager.disj(alive, manager.neg(has_outgoing)))
            if refined is kept:
                break
            kept = refined

        success = not manager.is_false(self.states) and manager.entails(engine.initial, kept)
        details = "" if success else "the initial state is outside the greatest controllable invariant set"
        return ControlVerdict(
            success=success,
            kept_states=engine.count_states(kept),
            total_states=self.state_count,
            details=details,
            backend=kept,
        )


def symbolic_explore(
    source: Union[ProcessDefinition, CompiledProcess, PolynomialDynamicalSystem],
    options: Optional[SymbolicOptions] = None,
) -> SymbolicReachability:
    """Encode ``source`` and compute its reachable state space symbolically."""
    return SymbolicEngine(source, options).reach()
