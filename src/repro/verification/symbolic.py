"""BDD-backed symbolic reachability and invariant checking.

This module is the symbolic half of the verification pipeline — the
construction Sigali actually performs, where the explicit explorer
(:mod:`repro.verification.explorer`) enumerates states one by one.  A SIGNAL
process's boolean/event control skeleton is first abstracted into a
polynomial dynamical system over Z/3Z (:mod:`repro.verification.encoding`);
here every ternary variable ``x`` is *bit-blasted* into two boolean
variables, ``x.p`` (presence) and ``x.v`` (carried truth value), with the
well-formedness invariant ``¬x.p ⇒ ¬x.v`` so state valuations are in
bijection with ternary valuations:

====== ======= =======
code    x.p     x.v
====== ======= =======
0       false   false
1       true    true
2       true    false
====== ======= =======

Every polynomial constraint becomes a BDD by enumerating the (few) ternary
variables of its own support; their conjunction is the instantaneous relation
``T_inst(state, signals)``, and the next-state polynomials extend it to the
full transition relation ``T(state, signals, state')``.  The transition
relation is kept *conjunctively partitioned* — one conjunct per constraint
and per next-state polynomial, clustered and scheduled for early
quantification by :class:`~repro.verification.relational.PartitionedRelation`
— and reachability is the least fixed point of relational image
computation::

    reach₀ = init;   reachₖ₊₁ = reachₖ ∪ rename(∃ signals, state . reachₖ ∧ T)

using the quantification / renaming / ``and_exists`` primitives of
:mod:`repro.clocks.bdd` (whose dynamic variable reordering the engine opts
into by default, ``reorder="auto"``).  The frontier never enumerates
individual states, so designs whose reachable set is far beyond the explicit
engine's ``max_states`` bound (e.g. the 2^n states of an n-stage boolean
shift register) are handled in time proportional to the BDD sizes instead —
``benchmarks/bench_symbolic_reachability.py`` measures the crossover, and
``benchmarks/bench_variable_ordering.py`` the adversarial equation orders
the monolithic static-order encoding cannot survive.

Invariant checking, reaction reachability and controller synthesis are
offered through the same :class:`~repro.verification.reachability.Reachability`
interface as the explicit engines, which is what
``tests/test_symbolic_vs_explicit.py`` exploits to cross-check the two
implementations reaction for reaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Mapping, Optional, Sequence, Union

from ..clocks.bdd import BDDManager, BDDNode
from ..core.values import ABSENT
from ..signal.ast import ProcessDefinition
from ..simulation.compiler import CompiledProcess
from .encoding import PolynomialDynamicalSystem, encode_process
from .invariants import CheckResult
from .reachability import BackendCapabilities, ReactionPredicate
from .relational import (
    RelationalEngineOptions,
    RelationalFixpointEngine,
    RelationalReachability,
    _presence,
    _primed,
    _value,
    manager_for_options,
)
from .z3z import FIELD, Polynomial

__all__ = [
    "RelationalFixpointEngine",
    "SymbolicEncodingError",
    "SymbolicEngine",
    "SymbolicOptions",
    "SymbolicReachability",
    "symbolic_explore",
]


class SymbolicEncodingError(Exception):
    """Raised when a polynomial's support is too wide to bit-blast locally."""


@dataclass
class SymbolicOptions(RelationalEngineOptions):
    """Parameters of a symbolic exploration.

    Inherits the partitioning/reordering/parallelism knobs of
    :class:`~repro.verification.relational.RelationalEngineOptions`
    (``partition``, ``reorder``, ``cluster_size``, ``reorder_threshold``,
    ``node_budget``, ``parallel``, ``parallel_mode`` — the last two run the
    fixpoint's image computations on a pool of spawned workers, with results
    pinned identical to the sequential fold) and adds:

    Attributes:
        max_iterations: bound on image-computation rounds (None = run to the
            fixpoint; the fixpoint always terminates on these finite systems).
        max_support: per-polynomial support width accepted by the local
            enumeration that builds constraint BDDs (3^width assignments).
    """

    max_iterations: Optional[int] = None
    max_support: int = 12


class SymbolicEngine(RelationalFixpointEngine):
    """Boolean transition-relation encoding of a polynomial dynamical system."""

    def __init__(
        self,
        source: Union[ProcessDefinition, CompiledProcess, PolynomialDynamicalSystem],
        options: Optional[SymbolicOptions] = None,
        manager: Optional[BDDManager] = None,
    ) -> None:
        if isinstance(source, CompiledProcess):
            source = encode_process(source.definition)
        elif isinstance(source, ProcessDefinition):
            source = encode_process(source)
        self.system: PolynomialDynamicalSystem = source
        self.options = options or SymbolicOptions()
        self.manager = manager if manager is not None else manager_for_options(self.options)
        self._declare_variables()
        self._build_relation()

    @classmethod
    def rehydrated(
        cls,
        system: PolynomialDynamicalSystem,
        options: Optional[SymbolicOptions] = None,
        payload: Optional[Mapping] = None,
    ) -> "SymbolicEngine":
        """An engine restored from a ``snapshot_relation`` payload.

        Skips :meth:`_build_relation` — the expensive half of construction,
        which enumerates every polynomial's ternary support — and loads the
        relation BDDs from ``payload`` instead; only the cheap variable
        layout runs.  The manager's variable order starts from the layout's
        declaration order whatever order the dump was sifted to, which is
        exactly the state a freshly built engine starts from.
        """
        if payload is None:
            raise ValueError("rehydrated() needs a snapshot_relation payload")
        engine = cls.__new__(cls)
        engine.system = system
        engine.options = options or SymbolicOptions()
        engine.manager = manager_for_options(engine.options)
        engine._declare_variables()
        engine._restore_relation(payload)
        return engine

    @property
    def name(self) -> str:
        """Name of the encoded process (shared engine interface)."""
        return self.system.name

    # -- variable layout ---------------------------------------------------------

    def _declare_variables(self) -> None:
        """Declare BDD bits in constraint-locality order.

        Variables that occur in the same constraint are declared next to each
        other (first-use order over the constraint list), which keeps the
        relation BDD small for pipelined designs such as shift registers; a
        state bit's primed copy sits directly below it, and the pair is
        declared as a reorder *group* so dynamic sifting keeps them adjacent
        (renaming maps are name-based and survive reorders regardless).
        """
        system = self.system
        order: list[str] = []
        seen: set[str] = set()

        def note(name: str) -> None:
            if name not in seen:
                seen.add(name)
                order.append(name)

        for constraint in system.constraints.constraints:
            for name in sorted(constraint.variables()):
                note(name)
        for state, polynomial in system.transitions.items():
            note(state)
            for name in sorted(polynomial.variables()):
                note(name)
        for name in system.signal_variables:
            note(name)
        for name in system.state_variables:
            note(name)

        self.state_names = list(system.state_variables)
        self.signal_names = list(system.signal_variables)
        states = set(self.state_names)
        self.signal_bits: list[str] = []
        self.state_bits: list[str] = []
        self.primed_bits: list[str] = []
        for name in order:
            bits = (_presence(name), _value(name))
            if name in states:
                for bit in bits:
                    self.manager.declare(bit)
                    self.manager.declare(_primed(bit))
                    self.manager.group_variables((bit, _primed(bit)))
                    self.state_bits.append(bit)
                    self.primed_bits.append(_primed(bit))
            else:
                for bit in bits:
                    self.manager.declare(bit)
                    self.signal_bits.append(bit)
        self._prime_map = {bit: _primed(bit) for bit in self.state_bits}
        self._unprime_map = {primed: bit for bit, primed in self._prime_map.items()}

    # -- encoding helpers ----------------------------------------------------------

    def code_cube(self, name: str, code: int, primed: bool = False) -> BDDNode:
        """The cube of presence/value bits encoding ternary ``code`` for ``name``."""
        presence_bit, value_bit = _presence(name), _value(name)
        if primed:
            presence_bit, value_bit = _primed(presence_bit), _primed(value_bit)
        code %= 3
        return self.manager.cube({presence_bit: code != 0, value_bit: code == 1})

    def _assignment_cube(self, assignment: Mapping[str, int]) -> BDDNode:
        cube = self.manager.true
        for name, code in assignment.items():
            cube = self.manager.conj(cube, self.code_cube(name, code))
        return cube

    def _polynomial_bdd(self, polynomial: Polynomial, next_state: Optional[str] = None) -> BDDNode:
        """BDD of ``polynomial = 0``, or of ``next_state' = polynomial`` when given.

        Built by enumerating the ternary assignments of the polynomial's own
        support — each equation touches only a handful of signals, so this
        local enumeration stays tiny even when the global state space is huge.
        """
        support = sorted(polynomial.variables())
        if len(support) > self.options.max_support:
            raise SymbolicEncodingError(
                f"polynomial support {len(support)} exceeds max_support="
                f"{self.options.max_support}: {polynomial!r}"
            )
        result = self.manager.false
        for values in product(FIELD, repeat=len(support)):
            assignment = dict(zip(support, values))
            outcome = polynomial.evaluate(assignment)
            if next_state is None:
                if outcome != 0:
                    continue
                cube = self._assignment_cube(assignment)
            else:
                cube = self.manager.conj(
                    self._assignment_cube(assignment),
                    self.code_cube(next_state, outcome, primed=True),
                )
            result = self.manager.disj(result, cube)
        return result

    def _well_formed(self, names: Sequence[str]) -> BDDNode:
        """``¬p ⇒ ¬v`` for every listed ternary variable."""
        manager = self.manager
        constraint = manager.true
        for name in names:
            implied = manager.implies(manager.var(_value(name)), manager.var(_presence(name)))
            constraint = manager.conj(constraint, implied)
        return constraint

    def _build_relation(self) -> None:
        """Build the relation as per-constraint conjuncts (the partition).

        Each polynomial constraint and each next-state polynomial contributes
        one part; the instantaneous relation (needed monolithically by
        witness extraction and reaction enumeration, and small — its
        conjuncts have near-disjoint local supports) is still materialised,
        but the full transition relation is not: the parts go to
        :meth:`~repro.verification.relational.RelationalFixpointEngine._finalise_relation`,
        which clusters them for early-quantification products.
        """
        manager = self.manager
        system = self.system
        parts: list[BDDNode] = [self._well_formed(self.signal_names + self.state_names)]
        for constraint in system.constraints.constraints:
            parts.append(self._polynomial_bdd(constraint))
            manager.maybe_reorder(parts)
        instantaneous = manager.true
        for part in parts:
            # The instantaneous relation is materialised monolithically (the
            # witness machinery needs it), so its fold gets the same growth
            # checkpoints as the monolithic transition fold.
            instantaneous = manager.conj(instantaneous, part)
            manager.maybe_reorder((instantaneous, *parts))
        self.instantaneous = instantaneous

        for state, polynomial in system.transitions.items():
            parts.append(self._polynomial_bdd(polynomial, next_state=state))
            manager.maybe_reorder((instantaneous, *parts))

        self.initial = manager.conj(
            self._well_formed(self.state_names),
            self._assignment_cube(system.initial_state()),
        )
        self._finalise_relation(parts, self.options.partition, self.options.cluster_size)

    # -- predicates ------------------------------------------------------------------

    def predicate_bdd(self, predicate: ReactionPredicate) -> BDDNode:
        """Compile a reaction predicate onto the signal presence/value bits."""
        manager = self.manager
        kind = predicate.kind
        if kind == "const":
            return manager.true if predicate.operands[0] else manager.false
        if kind == "not":
            return manager.neg(self.predicate_bdd(predicate.operands[0]))
        if kind == "and":
            return manager.conj_all(self.predicate_bdd(p) for p in predicate.operands)
        if kind == "or":
            return manager.disj_all(self.predicate_bdd(p) for p in predicate.operands)
        if kind == "value":
            raise SymbolicEncodingError(
                f"{self.system.name}: value predicates (on signal "
                f"{predicate.operands[0]!r}) test carried data, which the boolean "
                "abstraction does not represent — use an explicit backend"
            )
        name = predicate.operands[0]
        if name not in self.system.signal_variables:
            raise KeyError(f"{self.system.name}: predicate mentions unknown signal {name!r}")
        presence = manager.var(_presence(name))
        if kind == "present":
            return presence
        value = manager.var(_value(name))
        if kind == "true":
            return manager.conj(presence, value)
        return manager.conj(presence, manager.neg(value))

    def invariant_bdd(self, invariant: Polynomial) -> BDDNode:
        """BDD of ``invariant = 0``, for Sigali-style polynomial objectives."""
        return self._polynomial_bdd(invariant)

    # -- image computation -----------------------------------------------------------

    def reach(self) -> "SymbolicReachability":
        """Least fixpoint of image computation from the initial state."""
        reach, iterations, converged, rings = self._reach_fixpoint(self.options.max_iterations)
        return SymbolicReachability(self, reach, iterations, converged, tuple(rings))

    def decode_reaction(self, assignment: Mapping[str, bool]) -> dict[str, Any]:
        """Signal statuses of a bit-level satisfying assignment."""
        decoded: dict[str, Any] = {}
        for name in self.signal_names:
            if not assignment.get(_presence(name), False):
                decoded[name] = ABSENT
            else:
                decoded[name] = bool(assignment.get(_value(name), False))
        return decoded

    def decode_state(self, assignment: Mapping[str, bool]) -> dict[str, int]:
        """Ternary codes of the state variables in a bit-level assignment."""
        state: dict[str, int] = {}
        for name in self.state_names:
            if not assignment.get(_presence(name), False):
                state[name] = 0
            else:
                state[name] = 1 if assignment.get(_value(name), False) else 2
        return state


@dataclass
class SymbolicReachability(RelationalReachability):
    """The Z/3Z engine's reachable set, behind the shared interface.

    Everything generic — witness extraction, invariant / reachability
    checking, frontier-ring counterexample traces, controller synthesis —
    is inherited from
    :class:`~repro.verification.relational.RelationalReachability`; this
    subclass only declares the capabilities and adds the Sigali-style
    polynomial-invariant objective that needs the Z/3Z ``system``.
    """

    engine: SymbolicEngine

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        """The BDD fixpoint: boolean/event skeleton only, exhaustive (no
        state bound — ``max_iterations`` is off by default), with symbolic
        supervisory synthesis and ring-walk counterexample traces."""
        return BackendCapabilities(integer_data=False, bounded=False, synthesis=True, traces=True)

    def check_polynomial_invariant(self, invariant: Polynomial, name: str = "invariant") -> CheckResult:
        """Sigali-style objective: ``invariant = 0`` on every reachable reaction."""
        system = self.engine.system
        known = set(system.signal_variables) | set(system.state_variables)
        self._validate_signals(invariant.variables(), known, system.name, "polynomial invariant")
        violating = self.engine.manager.neg(self.engine.invariant_bdd(invariant))
        return self._witness(
            violating, name, found_holds=False, missing=lambda: f"{self.state_count} reachable states"
        )


def symbolic_explore(
    source: Union[ProcessDefinition, CompiledProcess, PolynomialDynamicalSystem],
    options: Optional[SymbolicOptions] = None,
) -> SymbolicReachability:
    """Encode ``source`` and compute its reachable state space symbolically."""
    return SymbolicEngine(source, options).reach()
