"""Invariant and reachability checking over explored state spaces.

Model checking in the paper's tool-chain ("showing that the refinement of the
EPC architecture layer preserves flow-equivalence amounts to a model checking
problem, implemented using, e.g., the tool Sigali") boils down to two
questions on a finite LTS: *is a predicate invariant along every reachable
execution?* and *is some state/reaction reachable?*  This module answers both,
producing counterexample paths when the answer is negative, and offers the
small CTL-like operators (AG, EF, AF) that the refinement obligations and the
controller-synthesis objectives are phrased with.

The checks also come in engine-agnostic form: :func:`invariant_holds` and
:func:`reaction_reachable` accept either a plain :class:`~.lts.LTS`, or any
backend of the shared :class:`~repro.verification.reachability.Reachability`
interface (explicit exploration, polynomial enumeration, or the symbolic BDD
engine), so a property written once can be checked by every engine — which is
exactly what the differential test suite does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from .lts import LTS, Label, Transition, label_to_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .reachability import Trace

#: Predicate over a transition label (a reaction).
LabelPredicate = Callable[[dict[str, Any]], bool]
#: Predicate over a state index.
StatePredicate = Callable[[int], bool]


@dataclass
class CheckResult:
    """Outcome of an invariant / reachability check.

    ``trace`` is the engine-independent counterexample/witness path
    (:class:`~repro.verification.reachability.Trace`) when the caller asked
    for one — the workbench attaches it on ``design.check(..., traces=True)``;
    it stays ``None`` by default so batch checking never pays for extraction.
    """

    holds: bool
    property_name: str
    counterexample: Optional[list[Transition]] = None
    witness_state: Optional[int] = None
    details: str = ""
    trace: Optional["Trace"] = None

    def __bool__(self) -> bool:
        return self.holds

    def explain(self) -> str:
        """Readable verdict, including the length of a counterexample if any."""
        verdict = "holds" if self.holds else "FAILS"
        text = f"{self.property_name}: {verdict}"
        if self.trace is not None:
            text += f" (trace of {len(self.trace)} steps)"
        elif self.counterexample is not None:
            text += f" (counterexample of length {len(self.counterexample)})"
        if self.details:
            text += f" — {self.details}"
        return text


def check_invariant_labels(lts: LTS, predicate: LabelPredicate, name: str = "invariant") -> CheckResult:
    """AG over reactions: every reachable transition label satisfies ``predicate``."""
    reachable = lts.reachable()
    for transition in lts.transitions():
        if transition.source not in reachable:
            continue
        if not predicate(label_to_dict(transition.label)):
            path = lts.path_to(lambda s: s == transition.source) or []
            return CheckResult(False, name, path + [transition], transition.target)
    return CheckResult(True, name, details=f"{len(reachable)} reachable states")


def check_invariant_states(lts: LTS, predicate: StatePredicate, name: str = "state-invariant") -> CheckResult:
    """AG over states: every reachable state satisfies ``predicate``."""
    for state in sorted(lts.reachable()):
        if not predicate(state):
            path = lts.path_to(lambda s: s == state)
            return CheckResult(False, name, path, state)
    return CheckResult(True, name, details=f"{len(lts.reachable())} reachable states")


def check_reachable(lts: LTS, predicate: StatePredicate, name: str = "reachability") -> CheckResult:
    """EF: some reachable state satisfies ``predicate`` (witness path returned)."""
    path = lts.path_to(predicate)
    if path is None and (lts.initial is None or not predicate(lts.initial)):
        return CheckResult(False, name, details="no reachable state satisfies the predicate")
    witness = path[-1].target if path else lts.initial
    return CheckResult(True, name, counterexample=path, witness_state=witness, details="witness found")


def check_reaction_reachable(lts: LTS, predicate: LabelPredicate, name: str = "reaction-reachability") -> CheckResult:
    """EF over reactions: some reachable transition label satisfies ``predicate``."""
    reachable = lts.reachable()
    for transition in lts.transitions():
        if transition.source in reachable and predicate(label_to_dict(transition.label)):
            path = lts.path_to(lambda s: s == transition.source) or []
            return CheckResult(True, name, path + [transition], transition.target, "witness reaction found")
    return CheckResult(False, name, details="no reachable reaction satisfies the predicate")


def _as_reachability(
    target: Any,
    caller: str,
    needs_synthesis: bool = False,
    predicates: tuple = (),
) -> Any:
    # Late import: reachability imports CheckResult from this module.  The
    # isinstance check matters — bare duck-typing would silently match e.g.
    # PolynomialDynamicalSystem.check_invariant(polynomial, max_states) and
    # misinterpret both arguments.
    from .reachability import Reachability

    if isinstance(target, Reachability):
        return target
    # A workbench Design resolves to whatever backend its registry's auto
    # policy picks, so the legacy entry points ride the facade's memoised
    # artifacts for free; the query's predicates are forwarded so value
    # atoms route to a concrete backend exactly as in the batch API.  Late
    # import: workbench sits above verification.
    from ..workbench import Design

    if isinstance(target, Design):
        return target.backend(predicates=predicates, needs_synthesis=needs_synthesis)
    raise TypeError(
        f"{caller} expects an LTS, a Reachability backend or a workbench Design, not "
        f"{type(target).__name__} (for a PolynomialDynamicalSystem, call .explore() first)"
    )


def invariant_holds(target: Any, predicate: LabelPredicate, name: str = "invariant") -> CheckResult:
    """Engine-agnostic AG over reactions.

    ``target`` may be an LTS (checked transition by transition) or any
    Reachability backend (delegated to its own ``check_invariant``, which for
    the symbolic engine is a single BDD emptiness test).
    """
    if isinstance(target, LTS):
        return check_invariant_labels(target, predicate, name)
    backend = _as_reachability(target, "invariant_holds", predicates=(predicate,))
    return backend.check_invariant(predicate, name)


def reaction_reachable(target: Any, predicate: LabelPredicate, name: str = "reachability") -> CheckResult:
    """Engine-agnostic EF over reactions (see :func:`invariant_holds`)."""
    if isinstance(target, LTS):
        return check_reaction_reachable(target, predicate, name)
    backend = _as_reachability(target, "reaction_reachable", predicates=(predicate,))
    return backend.check_reachable(predicate, name)


def states_satisfying_ef(lts: LTS, targets: set[int]) -> set[int]:
    """The states from which some state in ``targets`` is reachable (EF targets)."""
    result = set(targets)
    changed = True
    while changed:
        changed = False
        for transition in lts.transitions():
            if transition.target in result and transition.source not in result:
                result.add(transition.source)
                changed = True
    return result


def states_satisfying_ag(lts: LTS, safe: set[int]) -> set[int]:
    """The states from which every reachable state stays in ``safe`` (AG safe)."""
    unsafe = set(lts.states) - safe
    bad = states_satisfying_ef(lts, unsafe)
    return set(lts.states) - bad


def states_satisfying_af(lts: LTS, targets: set[int]) -> set[int]:
    """The states from which every infinite path eventually hits ``targets`` (AF).

    Computed as the least fixed point: a state is in AF(targets) when it is a
    target, or when it has at least one transition and all its successors are
    already in the set.
    """
    result = set(targets)
    changed = True
    while changed:
        changed = False
        for state in lts.states:
            if state in result:
                continue
            outgoing = lts.transitions_from(state)
            if outgoing and all(t.target in result for t in outgoing):
                result.add(state)
                changed = True
    return result


def always_eventually(lts: LTS, predicate: StatePredicate, name: str = "AF") -> CheckResult:
    """AF from the initial state: every execution eventually reaches ``predicate``."""
    targets = {state for state in lts.states if predicate(state)}
    good = states_satisfying_af(lts, targets)
    if lts.initial in good:
        return CheckResult(True, name, details=f"{len(targets)} target states")
    return CheckResult(False, name, details="some execution avoids the target states forever")


def deadlock_free(lts: LTS, name: str = "deadlock-freedom") -> CheckResult:
    """Every reachable state has at least one outgoing transition."""
    deadlocks = lts.deadlocks()
    if not deadlocks:
        return CheckResult(True, name, details=f"{len(lts.reachable())} reachable states")
    state = sorted(deadlocks)[0]
    return CheckResult(False, name, lts.path_to(lambda s: s == state), state, f"{len(deadlocks)} deadlock states")
