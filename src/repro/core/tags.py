"""Tags and chains: the time structure of the polychronous model.

Section 3 of the paper: "A tag ``t ∈ T`` denotes an instant.  The dense set is
equipped with a partial order relation ≤ to denote synchronization and causal
relations.  The subset ``T ⊆ 𝕋`` of a given process is chosen to be a
semi-lattice ``(T, ≤, 0)``.  A chain ``C`` is a totally ordered subset of
``T``."

Concretely we realise tags as rational numbers (``fractions.Fraction``): the
rationals are dense (any two tags admit a tag strictly between them, which is
what stretching functions exploit) and totally ordered, so any finite set of
tags is a chain.  Partial order *across* time scales is not encoded in the tag
objects themselves; it arises from the stretching relation between behaviors
(see :mod:`repro.core.stretching`), exactly as the paper treats distinct
processes' tag sets up to stretch-equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Sequence, Union

TagLike = Union["Tag", int, float, str, Fraction]


@dataclass(frozen=True, order=True)
class Tag:
    """An instant of the dense time domain 𝕋.

    Tags are immutable, totally ordered, hashable wrappers around a rational
    position.  ``Tag(0)`` plays the role of the semi-lattice bottom ``0``.
    """

    position: Fraction

    def __init__(self, position: TagLike) -> None:
        if isinstance(position, Tag):
            frac = position.position
        else:
            frac = Fraction(position)
        object.__setattr__(self, "position", frac)

    # -- arithmetic helpers used by stretching functions -------------------

    def shifted(self, delta: TagLike) -> "Tag":
        """Return a new tag displaced by ``delta``."""
        return Tag(self.position + Fraction(delta if not isinstance(delta, Tag) else delta.position))

    def scaled(self, factor: TagLike) -> "Tag":
        """Return a new tag scaled by a (positive) ``factor``."""
        f = Fraction(factor if not isinstance(factor, Tag) else factor.position)
        if f <= 0:
            raise ValueError("tag scaling factor must be strictly positive")
        return Tag(self.position * f)

    @staticmethod
    def between(lo: "Tag", hi: "Tag") -> "Tag":
        """Return a tag strictly between ``lo`` and ``hi`` (density of 𝕋)."""
        if not lo < hi:
            raise ValueError(f"no tag strictly between {lo} and {hi}")
        return Tag((lo.position + hi.position) / 2)

    def __repr__(self) -> str:
        if self.position.denominator == 1:
            return f"Tag({self.position.numerator})"
        return f"Tag({self.position.numerator}/{self.position.denominator})"

    def __str__(self) -> str:
        if self.position.denominator == 1:
            return f"t{self.position.numerator}"
        return f"t{self.position.numerator}/{self.position.denominator}"


#: The bottom element of the semi-lattice of tags.
TAG_ZERO = Tag(0)


def as_tag(t: TagLike) -> Tag:
    """Coerce ``t`` to a :class:`Tag`."""
    return t if isinstance(t, Tag) else Tag(t)


def natural_tags(count: int, start: int = 0) -> list[Tag]:
    """Return ``count`` consecutive integer tags starting at ``start``.

    These are the tags of *strict* behaviors (canonical representatives of
    stretch-equivalence classes).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [Tag(i) for i in range(start, start + count)]


class Chain:
    """A totally ordered, finite set of tags.

    Chains are the domains of signals: ``tags(s)`` is a chain.  The class
    enforces strict ordering and offers the set/sequence operations the
    tagged model needs (membership, union, intersection, indexing, successor).
    """

    __slots__ = ("_tags",)

    def __init__(self, tags: Iterable[TagLike] = ()) -> None:
        seen: set[Tag] = set()
        ordered: list[Tag] = []
        for t in tags:
            tag = as_tag(t)
            if tag in seen:
                continue
            seen.add(tag)
            ordered.append(tag)
        ordered.sort()
        self._tags: tuple[Tag, ...] = tuple(ordered)

    # -- basic container protocol ------------------------------------------

    def __len__(self) -> int:
        return len(self._tags)

    def __iter__(self) -> Iterator[Tag]:
        return iter(self._tags)

    def __contains__(self, t: object) -> bool:
        if not isinstance(t, (Tag, int, float, str, Fraction)):
            return False
        return as_tag(t) in set(self._tags)

    def __getitem__(self, index: int) -> Tag:
        return self._tags[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Chain):
            return NotImplemented
        return self._tags == other._tags

    def __hash__(self) -> int:
        return hash(self._tags)

    def __repr__(self) -> str:
        inner = ", ".join(str(t) for t in self._tags)
        return f"Chain([{inner}])"

    # -- chain-specific operations ------------------------------------------

    @property
    def tags(self) -> tuple[Tag, ...]:
        """The tags of the chain in increasing order."""
        return self._tags

    def is_empty(self) -> bool:
        """Return True when the chain contains no tag."""
        return not self._tags

    def min(self) -> Tag:
        """Smallest tag of the chain."""
        if not self._tags:
            raise ValueError("empty chain has no minimum")
        return self._tags[0]

    def max(self) -> Tag:
        """Largest tag of the chain."""
        if not self._tags:
            raise ValueError("empty chain has no maximum")
        return self._tags[-1]

    def index(self, t: TagLike) -> int:
        """Position of tag ``t`` within the chain."""
        return self._tags.index(as_tag(t))

    def successor(self, t: TagLike) -> Tag | None:
        """Return the next tag after ``t`` in the chain, or None."""
        i = self.index(t)
        if i + 1 < len(self._tags):
            return self._tags[i + 1]
        return None

    def predecessor(self, t: TagLike) -> Tag | None:
        """Return the tag preceding ``t`` in the chain, or None."""
        i = self.index(t)
        if i > 0:
            return self._tags[i - 1]
        return None

    def union(self, other: "Chain") -> "Chain":
        """Chain containing the tags of both chains."""
        return Chain(self._tags + other._tags)

    def intersection(self, other: "Chain") -> "Chain":
        """Chain containing the tags common to both chains."""
        other_set = set(other._tags)
        return Chain(t for t in self._tags if t in other_set)

    def difference(self, other: "Chain") -> "Chain":
        """Chain containing the tags of ``self`` not in ``other``."""
        other_set = set(other._tags)
        return Chain(t for t in self._tags if t not in other_set)

    def issubset(self, other: "Chain") -> bool:
        """True when every tag of ``self`` belongs to ``other``."""
        return set(self._tags) <= set(other._tags)

    def restricted_before(self, t: TagLike) -> "Chain":
        """Prefix of the chain with tags strictly smaller than ``t``."""
        bound = as_tag(t)
        return Chain(x for x in self._tags if x < bound)

    def restricted_upto(self, t: TagLike) -> "Chain":
        """Prefix of the chain with tags not greater than ``t``."""
        bound = as_tag(t)
        return Chain(x for x in self._tags if x <= bound)

    @staticmethod
    def naturals(count: int) -> "Chain":
        """The canonical chain ``0 < 1 < ... < count-1``."""
        return Chain(natural_tags(count))


def merge_chains(chains: Sequence[Chain]) -> Chain:
    """Union of a sequence of chains (the tags of a behavior)."""
    merged: list[Tag] = []
    for chain in chains:
        merged.extend(chain.tags)
    return Chain(merged)
