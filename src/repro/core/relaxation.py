"""Relaxation and flow-equivalence of behaviors.

Section 3 of the paper ("Distributed design"): "The relaxation relation allows
to individually stretch the signals of a behavior.  A behavior ``c`` is a
relaxation of ``b``, written ``b ⊑ c``, iff ``vars(b) = vars(c)`` and for all
``x ∈ vars(b)``, ``b|x ≤ c|x``.  Relaxation is a partial-order relation that
defines the flow-equivalence relation.  Two behaviors are flow-equivalent iff
their signals hold the same values in the same order."

Flow-equivalence is the metric used to check the correctness of GALS
refinements: it forgets synchronisation (relative tagging across signals) and
keeps only the per-signal sequences of exchanged values.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .behaviors import Behavior
from .signals import SignalTrace


def is_relaxation(source: Behavior, target: Behavior) -> bool:
    """``source ⊑ target``: per-signal stretching, synchronisation discarded."""
    if source.variables != target.variables:
        return False
    return all(
        source[name].is_stretching_of(target[name]) and source[name].values == target[name].values
        for name in source.variables
    )


def flow_equivalent(left: Behavior, right: Behavior) -> bool:
    """``left ≍ right``: same per-signal value sequences (same flows)."""
    if left.variables != right.variables:
        return False
    return all(left[name].same_flow(right[name]) for name in left.variables)


def flow_canonical(behavior: Behavior) -> Behavior:
    """The strict representative ``(b)_≍`` of the flow-equivalence class.

    Each signal is independently retagged onto ``0..n_x - 1``: the class of a
    behavior under flow-equivalence is a semi-lattice and this is its minimal
    element.
    """
    return Behavior({name: behavior[name].strict() for name in behavior.variables})


def flows(behavior: Behavior) -> dict[str, tuple]:
    """The per-signal value sequences of a behavior (its "flows")."""
    return {name: behavior[name].values for name in behavior.variables}


def flow_prefix_of(short: Behavior, long: Behavior) -> bool:
    """True when every flow of ``short`` is a prefix of the same flow in ``long``.

    This weaker comparison is what bounded-trace refinement checks use: a
    finite simulation of the refined design need not produce *exactly* as many
    values as the specification, only a consistent prefix.
    """
    if not short.variables <= long.variables:
        return False
    for name in short.variables:
        sv = short[name].values
        lv = long[name].values
        if sv != lv[: len(sv)]:
            return False
    return True


def flow_equivalent_on(left: Behavior, right: Behavior, names: Iterable[str]) -> bool:
    """Flow-equivalence restricted to a set of observed names."""
    observed = list(names)
    return flow_equivalent(left.project(observed), right.project(observed))


def behavior_from_flows(columns: Mapping[str, Sequence]) -> Behavior:
    """Build the strict behavior whose flows are the given value sequences.

    Unlike :meth:`Behavior.from_columns`, every signal gets its *own* tag
    scale ``0..n_x-1`` — this is the canonical desynchronised reading of a set
    of flows.
    """
    return Behavior({name: SignalTrace.from_values(list(values)) for name, values in columns.items()})
