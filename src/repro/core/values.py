"""Value domain of the polychronous model.

The paper considers "a set of boolean and integer values ``v in V`` to
represent the operands and results of a computation" (Section 3).  This module
defines that value domain together with the distinguished *absence* marker used
by the operational layers (a signal is simply *not defined* at a tag in the
denotational model; operationally we carry an explicit ``ABSENT`` status).

The value domain is deliberately permissive: booleans, integers and symbolic
constants (strings) are all allowed, plus the pure *event* value ``EVENT``
which is the single value carried by signals of type ``event`` in SIGNAL
(an event signal is present-with-value-true or absent).
"""

from __future__ import annotations

from typing import Any, Iterable


class _Absent:
    """Singleton marker for the absence of a signal at an instant.

    ``ABSENT`` is *not* a value of the paper's value domain ``V``; it is the
    operational encoding of "this signal has no event at this tag".  It is
    falsy, hashable, and prints as ``⊥``.
    """

    _instance: "_Absent | None" = None

    def __new__(cls) -> "_Absent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ABSENT"

    def __str__(self) -> str:
        return "⊥"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (_Absent, ())


ABSENT = _Absent()


class _Event:
    """Singleton value carried by pure ``event`` signals.

    In SIGNAL an ``event`` signal carries the value *true* whenever it is
    present.  We keep a distinct singleton so traces render as ``⊤`` and so
    that type-checking of event signals is possible, but it compares equal to
    ``True`` to match the SIGNAL convention (``when reset`` samples on the
    event being present and true).
    """

    _instance: "_Event | None" = None

    def __new__(cls) -> "_Event":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "EVENT"

    def __str__(self) -> str:
        return "⊤"

    def __bool__(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return other is self or other is True or other == 1

    def __hash__(self) -> int:
        return hash(True)

    def __reduce__(self):
        return (_Event, ())


EVENT = _Event()


#: Python types admitted as signal values.
VALUE_TYPES = (bool, int, str, _Event)


def is_value(v: Any) -> bool:
    """Return ``True`` when ``v`` belongs to the value domain ``V``.

    ``ABSENT`` is *not* a value; ``EVENT`` is.
    """
    if v is ABSENT:
        return False
    return isinstance(v, VALUE_TYPES)


def is_present(v: Any) -> bool:
    """Return ``True`` when ``v`` denotes a present value (i.e. not ABSENT)."""
    return v is not ABSENT


def check_value(v: Any) -> Any:
    """Validate ``v`` as a member of the value domain and return it.

    Raises:
        TypeError: if ``v`` is not an admissible signal value.
    """
    if not is_value(v):
        raise TypeError(f"not a signal value: {v!r}")
    return v


def check_values(values: Iterable[Any]) -> list:
    """Validate an iterable of values, returning them as a list."""
    return [check_value(v) for v in values]


def render_value(v: Any) -> str:
    """Render a value (or ABSENT) compactly for trace display."""
    if v is ABSENT:
        return "⊥"
    if v is EVENT:
        return "⊤"
    if v is True:
        return "tt"
    if v is False:
        return "ff"
    return str(v)
