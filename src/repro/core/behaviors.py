"""Behaviors: partial functions from signal names to signals.

Section 3 of the paper: "A behavior ``b ∈ B = X ⇀ S`` is a partial function
from signal names ``x ∈ X`` to signals ``s ∈ S``.  We write ``vars(b)`` for
the domain of ``b`` and ``tags(b)`` for its tags.  [...]  We write ``b|_X``
for the projection of a behavior ``b`` on a set ``X`` of names and ``b/_X``
for its complementary."
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .signals import SignalTrace
from .tags import Chain, Tag, TagLike, as_tag, merge_chains
from .values import ABSENT, render_value


class Behavior:
    """An immutable mapping from signal names to :class:`SignalTrace`."""

    __slots__ = ("_signals",)

    def __init__(self, signals: Mapping[str, SignalTrace | Sequence[tuple[TagLike, Any]]] = ()) -> None:
        store: dict[str, SignalTrace] = {}
        items = signals.items() if isinstance(signals, Mapping) else signals
        for name, trace in items:
            if not isinstance(name, str) or not name:
                raise TypeError(f"signal names must be non-empty strings, got {name!r}")
            if not isinstance(trace, SignalTrace):
                trace = SignalTrace(trace)
            store[name] = trace
        self._signals: dict[str, SignalTrace] = dict(sorted(store.items()))

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def from_columns(columns: Mapping[str, Sequence[Any]]) -> "Behavior":
        """Build a *synchronous* behavior from per-name value columns.

        Every name receives one event per column entry at tags ``0..n-1``;
        ``ABSENT`` entries produce no event at that tag.  This is the most
        convenient way to write down the trace tables of Fig. 1.
        """
        signals: dict[str, SignalTrace] = {}
        for name, column in columns.items():
            events = [(i, v) for i, v in enumerate(column) if v is not ABSENT]
            signals[name] = SignalTrace(events)
        return Behavior(signals)

    @staticmethod
    def empty(names: Iterable[str] = ()) -> "Behavior":
        """A behavior defined on ``names`` where every signal is empty."""
        return Behavior({name: SignalTrace.empty() for name in names})

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._signals)

    def __iter__(self) -> Iterator[str]:
        return iter(self._signals)

    def __contains__(self, name: object) -> bool:
        return name in self._signals

    def __getitem__(self, name: str) -> SignalTrace:
        return self._signals[name]

    def get(self, name: str, default: SignalTrace | None = None) -> SignalTrace | None:
        """Signal bound to ``name`` or ``default``."""
        return self._signals.get(name, default)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Behavior):
            return NotImplemented
        return self._signals == other._signals

    def __hash__(self) -> int:
        return hash(tuple(self._signals.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {s!r}" for n, s in self._signals.items())
        return f"Behavior({{{inner}}})"

    # -- observations ------------------------------------------------------------

    @property
    def variables(self) -> frozenset[str]:
        """``vars(b)``: the names the behavior is defined on."""
        return frozenset(self._signals)

    @property
    def signals(self) -> dict[str, SignalTrace]:
        """A copy of the name → signal mapping."""
        return dict(self._signals)

    @property
    def tags(self) -> Chain:
        """``tags(b)``: the union of the tags of all signals."""
        return merge_chains([s.tags for s in self._signals.values()])

    def is_present(self, name: str, t: TagLike) -> bool:
        """Formalisation of "x is present at t in b"."""
        trace = self._signals.get(name)
        return trace is not None and trace.is_present(t)

    def value_at(self, name: str, t: TagLike, default: Any = ABSENT) -> Any:
        """Value of ``name`` at tag ``t`` (ABSENT when absent)."""
        trace = self._signals.get(name)
        if trace is None:
            return default
        return trace.at(t, default)

    def instant(self, t: TagLike) -> dict[str, Any]:
        """The synchronous cut of the behavior at tag ``t``.

        Returns a dict mapping every variable to its value at ``t`` or
        ``ABSENT``.
        """
        tag = as_tag(t)
        return {name: trace.at(tag) for name, trace in self._signals.items()}

    def length(self) -> int:
        """Number of distinct tags of the behavior."""
        return len(self.tags)

    # -- projection / restriction --------------------------------------------------

    def project(self, names: Iterable[str]) -> "Behavior":
        """``b|_X``: restriction of the behavior to the names in ``names``.

        Names not in ``vars(b)`` are ignored (projection on a larger set is
        the projection on the intersection).
        """
        keep = set(names)
        return Behavior({n: s for n, s in self._signals.items() if n in keep})

    def hide(self, names: Iterable[str]) -> "Behavior":
        """``b/_X``: the complementary projection, dropping ``names``."""
        drop = set(names)
        return Behavior({n: s for n, s in self._signals.items() if n not in drop})

    def rename(self, mapping: Mapping[str, str]) -> "Behavior":
        """Rename variables according to ``mapping`` (missing names kept)."""
        renamed: dict[str, SignalTrace] = {}
        for name, trace in self._signals.items():
            new_name = mapping.get(name, name)
            if new_name in renamed:
                raise ValueError(f"renaming collision on {new_name!r}")
            renamed[new_name] = trace
        return Behavior(renamed)

    # -- combination ------------------------------------------------------------------

    def extend(self, other: "Behavior") -> "Behavior":
        """``b ⊎ c``: disjoint union used by synchronous composition.

        Shared names must be bound to the *same* signal in both behaviors.
        """
        merged = dict(self._signals)
        for name, trace in other._signals.items():
            if name in merged and merged[name] != trace:
                raise ValueError(f"behaviors disagree on shared signal {name!r}")
            merged[name] = trace
        return Behavior(merged)

    def with_signal(self, name: str, trace: SignalTrace) -> "Behavior":
        """Return a copy of the behavior with ``name`` (re)bound to ``trace``."""
        signals = dict(self._signals)
        signals[name] = trace
        return Behavior(signals)

    # -- transformations -----------------------------------------------------------------

    def retagged(self, mapping: Callable[[Tag], TagLike]) -> "Behavior":
        """Apply the same tag transformation to every signal (stretching)."""
        return Behavior({n: s.retagged(mapping) for n, s in self._signals.items()})

    def prefix_tags(self, count: int) -> "Behavior":
        """Restrict the behavior to its first ``count`` tags (global cut)."""
        chain = self.tags
        if count >= len(chain):
            return self
        if count <= 0:
            return Behavior({n: SignalTrace.empty() for n in self._signals})
        bound = chain[count - 1]
        return Behavior({n: s.upto(bound) for n, s in self._signals.items()})

    # -- rendering ----------------------------------------------------------------------

    def to_columns(self) -> dict[str, list[Any]]:
        """Tabular view: one column per variable, one row per behavior tag."""
        chain = self.tags
        return {
            name: [trace.at(t) for t in chain]
            for name, trace in self._signals.items()
        }

    def render(self) -> str:
        """Multi-line, Fig.-1-style rendering of the behavior."""
        chain = self.tags
        if chain.is_empty():
            return "\n".join(f"{name} : (empty)" for name in self._signals)
        width = max((len(name) for name in self._signals), default=0)
        header = " " * (width + 3) + "  ".join(f"{t!s:>8}" for t in chain)
        lines = [header]
        for name, trace in self._signals.items():
            cells = []
            for t in chain:
                v = trace.at(t)
                cells.append(f"{render_value(v) if v is not ABSENT else '':>8}")
            lines.append(f"{name:<{width}} : " + "  ".join(cells))
        return "\n".join(lines)
