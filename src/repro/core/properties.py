"""Polychronous design properties: endochrony, flow-invariance, endo-isochrony.

Section 3 of the paper ("Polychronous design properties"):

* A process ``p`` is **endochronous** on its inputs ``I`` iff for all
  ``b, c ∈ p``: ``(b|_I)_≍ = (c|_I)_≍  ⇒  b ≈ c`` — given an asynchronous
  stimulation of its inputs, the process reconstructs a unique synchronous
  behavior (up to stretch-equivalence).  Endochronous processes are
  insensitive to internal and external propagation delays.

* ``p`` and ``q`` are **flow-invariant** iff for all ``b ∈ p | q`` and all
  ``c ∈ p ‖ q``: ``(b|_I)_≍ = (c|_I)_≍  ⇒  b ≍ c`` for ``I`` the inputs of
  ``p | q`` — refining the synchronous composition into an asynchronous one
  preserves flow-equivalence.

* Two endochronous processes ``p`` and ``q`` are **endo-isochronous** iff
  ``(p|_I) | (q|_I)`` is endochronous, with ``I = vars(p) ∩ vars(q)``.
  *Endo-isochrony implies flow-invariance* — this is the theorem the GALS
  design methodology of the paper rests on.

All checks operate on the finite canonical representation of processes
(bounded traces) produced by the rest of the library; each returns a rich
report object so that callers (and the EPC refinement chain) can display the
offending pair of behaviors when a property fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Optional, Sequence

from .behaviors import Behavior
from .processes import Process
from .relaxation import flow_canonical, flow_equivalent, flows
from .stretching import stretch_equivalent


@dataclass(frozen=True)
class PropertyReport:
    """Outcome of a design-property check.

    Attributes:
        holds: whether the property is satisfied on the analysed process(es).
        property_name: which property was checked.
        witness: an optional pair of behaviors violating the property.
        details: human-readable explanation.
    """

    holds: bool
    property_name: str
    witness: Optional[tuple[Behavior, ...]] = None
    details: str = ""

    def __bool__(self) -> bool:
        return self.holds

    def explain(self) -> str:
        """A short, human-readable verdict."""
        verdict = "HOLDS" if self.holds else "FAILS"
        text = f"{self.property_name}: {verdict}"
        if self.details:
            text += f" — {self.details}"
        return text


def check_determinism(process: Process, inputs: Iterable[str]) -> PropertyReport:
    """Input-determinism: equal input *signals* (synchronously) force equal behaviors.

    This is the synchronous counterpart of endochrony: two behaviors that
    agree on the inputs with their synchronisation must be stretch-equivalent.
    """
    input_names = [n for n in inputs if n in process.variables]
    for left, right in combinations(process.behaviors, 2):
        if stretch_equivalent(left.project(input_names), right.project(input_names)):
            if not stretch_equivalent(left, right):
                return PropertyReport(
                    False,
                    "determinism",
                    (left, right),
                    "two distinct behaviors share the same synchronous inputs",
                )
    return PropertyReport(True, "determinism", details=f"on inputs {sorted(input_names)}")


def check_endochrony(process: Process, inputs: Iterable[str]) -> PropertyReport:
    """Endochrony of ``process`` on ``inputs`` (Section 3 definition)."""
    input_names = [n for n in inputs if n in process.variables]
    behaviors = list(process.behaviors)
    for left, right in combinations(behaviors, 2):
        left_flows = flow_canonical(left.project(input_names))
        right_flows = flow_canonical(right.project(input_names))
        if left_flows == right_flows and not stretch_equivalent(left, right):
            return PropertyReport(
                False,
                "endochrony",
                (left, right),
                "two non-stretch-equivalent behaviors share the same input flows "
                f"{flows(left.project(input_names))}",
            )
    return PropertyReport(
        True,
        "endochrony",
        details=f"{len(behaviors)} behaviors, inputs {sorted(input_names)}",
    )


def check_flow_invariance(
    spec: Process,
    impl: Process,
    inputs: Iterable[str],
    synchronous: Optional[Process] = None,
    asynchronous: Optional[Process] = None,
) -> PropertyReport:
    """Flow-invariance of the pair ``(spec, impl)`` on the given inputs.

    ``p | q`` and ``p ‖ q`` are computed from ``spec`` and ``impl`` unless the
    caller passes pre-computed compositions (useful for the larger EPC
    benchmarks where the compositions are reused across checks).
    """
    input_names = list(inputs)
    sync = synchronous if synchronous is not None else spec.compose(impl)
    asyn = asynchronous if asynchronous is not None else spec.async_compose(impl)
    for b in sync.behaviors:
        b_inputs = flow_canonical(b.project(input_names))
        for c in asyn.behaviors:
            if flow_canonical(c.project(input_names)) != b_inputs:
                continue
            if not flow_equivalent(b.project(sorted(sync.variables)), c.project(sorted(sync.variables))):
                return PropertyReport(
                    False,
                    "flow-invariance",
                    (b, c),
                    "a desynchronised execution diverges from the synchronous one "
                    "despite identical input flows",
                )
    return PropertyReport(
        True,
        "flow-invariance",
        details=f"|p|q| = {len(sync)}, |p‖q| = {len(asyn)}, inputs {sorted(input_names)}",
    )


def check_isochrony(left: Process, right: Process) -> PropertyReport:
    """Isochrony-style compatibility of two processes on their interface.

    Two processes are compatible when every pair of behaviors that agree on
    the *flows* of their shared signals also agree on their synchronisation
    (i.e. their shared projections are stretch-equivalent).  This is the
    pairwise condition that makes the synchronous and asynchronous
    compositions coincide on the interface.
    """
    shared = sorted(left.variables & right.variables)
    for b in left.behaviors:
        b_shared = b.project(shared)
        for c in right.behaviors:
            c_shared = c.project(shared)
            if flows(b_shared) == flows(c_shared) and not stretch_equivalent(b_shared, c_shared):
                return PropertyReport(
                    False,
                    "isochrony",
                    (b, c),
                    f"shared flows on {shared} agree but synchronisations differ",
                )
    return PropertyReport(True, "isochrony", details=f"interface {shared}")


def check_endo_isochrony(
    left: Process,
    right: Process,
    left_inputs: Iterable[str],
    right_inputs: Iterable[str],
) -> PropertyReport:
    """Endo-isochrony of the pair ``(left, right)``.

    Requires both components endochronous (on their own inputs) and the
    composition of their interface projections endochronous on the union of
    interface inputs, per the paper's definition.
    """
    shared = sorted(left.variables & right.variables)
    left_endo = check_endochrony(left, left_inputs)
    if not left_endo:
        return PropertyReport(False, "endo-isochrony", left_endo.witness, "left component is not endochronous")
    right_endo = check_endochrony(right, right_inputs)
    if not right_endo:
        return PropertyReport(False, "endo-isochrony", right_endo.witness, "right component is not endochronous")
    interface = left.project(shared).compose(right.project(shared))
    interface_inputs = [n for n in shared if n in set(left_inputs) | set(right_inputs)] or shared
    interface_endo = check_endochrony(interface, interface_inputs)
    if not interface_endo:
        return PropertyReport(
            False,
            "endo-isochrony",
            interface_endo.witness,
            "the interface composition (p|_I)|(q|_I) is not endochronous",
        )
    return PropertyReport(True, "endo-isochrony", details=f"interface {shared}")


@dataclass
class RefinementObligation:
    """One verification obligation of a refinement step (used by repro.epc).

    Attributes:
        name: identifier of the obligation (e.g. "architecture-flow-preservation").
        description: what is being checked, in the paper's vocabulary.
        report: the outcome, filled in when the obligation is discharged.
    """

    name: str
    description: str
    report: Optional[PropertyReport] = None

    @property
    def discharged(self) -> bool:
        """True when the obligation has been checked and holds."""
        return self.report is not None and self.report.holds


@dataclass
class RefinementReport:
    """Aggregate result of checking a refinement step."""

    step: str
    obligations: list[RefinementObligation] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """True when every obligation is discharged."""
        return all(o.discharged for o in self.obligations)

    def __bool__(self) -> bool:
        return self.holds

    def add(self, name: str, description: str, report: PropertyReport) -> RefinementObligation:
        """Record an obligation outcome and return it."""
        obligation = RefinementObligation(name, description, report)
        self.obligations.append(obligation)
        return obligation

    def summary(self) -> str:
        """Multi-line, human-readable summary of the refinement step."""
        lines = [f"refinement step: {self.step} — {'OK' if self.holds else 'FAILED'}"]
        for obligation in self.obligations:
            status = "ok" if obligation.discharged else "FAILED"
            lines.append(f"  [{status}] {obligation.name}: {obligation.description}")
            if obligation.report is not None and obligation.report.details:
                lines.append(f"         {obligation.report.details}")
        return "\n".join(lines)
