"""Stretching and stretch-equivalence of behaviors.

Section 3 of the paper ("Scalability is a key concept..."): a behavior ``c``
is a *stretching* of ``b``, written ``b ≤ c``, iff ``vars(b) = vars(c)`` and
there exists a function ``f : T → T`` that

1. is strictly increasing,
2. is monotonic along all chains,
3. satisfies ``tags(c(x)) = f(tags(b(x)))`` for all ``x ∈ vars(b)`` and
   ``b(x)(t) = c(x)(f(t))`` for all ``x`` and all ``t ∈ tags(b(x))``.

Stretching is a partial order; it induces *stretch-equivalence* ``b ≈ c``
(there exists ``d`` with ``d ≤ b`` and ``d ≤ c``).  Every stretch-equivalence
class contains a unique *strict* behavior, obtained by retagging the union of
the behavior's tags onto the naturals — this canonical form is what we use to
decide stretch-equivalence.
"""

from __future__ import annotations

from typing import Iterable

from .behaviors import Behavior
from .tags import Tag


def stretching_function(source: Behavior, target: Behavior) -> dict[Tag, Tag] | None:
    """Return the stretching function from ``source`` to ``target`` if any.

    The function is returned as a finite mapping defined on ``tags(source)``.
    Returns ``None`` when ``target`` is not a stretching of ``source``.
    """
    if source.variables != target.variables:
        return None
    mapping: dict[Tag, Tag] = {}
    for name in source.variables:
        src_trace = source[name]
        tgt_trace = target[name]
        if len(src_trace) != len(tgt_trace):
            return None
        for (src_tag, src_val), (tgt_tag, tgt_val) in zip(src_trace.events, tgt_trace.events):
            if src_val != tgt_val:
                return None
            if src_tag in mapping and mapping[src_tag] != tgt_tag:
                return None
            mapping[src_tag] = tgt_tag
    # The induced global map must be strictly increasing on tags(source).
    ordered = sorted(mapping.items())
    for (_, prev_img), (_, next_img) in zip(ordered, ordered[1:]):
        if not prev_img < next_img:
            return None
    return mapping


def is_stretching(source: Behavior, target: Behavior) -> bool:
    """``source ≤ target``: is ``target`` a stretching of ``source``?"""
    return stretching_function(source, target) is not None


def strict_behavior(behavior: Behavior) -> Behavior:
    """The canonical strict representative of ``behavior``'s class.

    The union of the behavior's tags is retagged onto ``0..n-1`` preserving
    order; each signal keeps its events at the image of its own tags.  This is
    the minimal element ``(b)_≈`` of the stretch-equivalence class.
    """
    chain = behavior.tags
    index = {tag: Tag(i) for i, tag in enumerate(chain)}
    return behavior.retagged(lambda t: index[t])


def is_strict(behavior: Behavior) -> bool:
    """True when the behavior is its own strict representative."""
    return behavior == strict_behavior(behavior)


def stretch_equivalent(left: Behavior, right: Behavior) -> bool:
    """``left ≈ right``: stretch-equivalence (same strict representative)."""
    if left.variables != right.variables:
        return False
    return strict_behavior(left) == strict_behavior(right)


def stretch_closure(behaviors: Iterable[Behavior]) -> set[Behavior]:
    """Canonical finite representation of the stretch-closure of a set.

    The stretch-closure of a process is infinite (any behavior can be
    stretched arbitrarily); we represent it by the set of strict behaviors,
    which is exactly the set ``(p)_≈`` of the paper.  Membership of an
    arbitrary behavior in the closed process is then decided by
    :func:`stretch_equivalent` against these representatives (see
    :meth:`repro.core.processes.Process.accepts`).
    """
    return {strict_behavior(b) for b in behaviors}


def common_unstretching(left: Behavior, right: Behavior) -> Behavior | None:
    """A behavior ``d`` with ``d ≤ left`` and ``d ≤ right``, if one exists.

    By the semi-lattice property the strict representative works whenever the
    two behaviors are stretch-equivalent.
    """
    if not stretch_equivalent(left, right):
        return None
    return strict_behavior(left)
