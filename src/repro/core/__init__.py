"""The tagged model of polychronous signals (paper Section 3).

This package implements the denotational layer of the reproduction: tags,
chains, events, signals, behaviors and processes, together with the
stretching / relaxation orders, flow-equivalence, synchronous and asynchronous
composition, and the design properties (endochrony, flow-invariance,
endo-isochrony) that the refinement methodology of the paper relies on.
"""

from .values import ABSENT, EVENT, is_present, is_value, render_value
from .tags import Chain, Tag, TAG_ZERO, as_tag, merge_chains, natural_tags
from .signals import Event, SignalTrace
from .behaviors import Behavior
from .stretching import (
    common_unstretching,
    is_stretching,
    is_strict,
    strict_behavior,
    stretch_closure,
    stretch_equivalent,
    stretching_function,
)
from .relaxation import (
    behavior_from_flows,
    flow_canonical,
    flow_equivalent,
    flow_equivalent_on,
    flow_prefix_of,
    flows,
    is_relaxation,
)
from .processes import Process
from .properties import (
    PropertyReport,
    RefinementObligation,
    RefinementReport,
    check_determinism,
    check_endochrony,
    check_endo_isochrony,
    check_flow_invariance,
    check_isochrony,
)

__all__ = [
    "ABSENT",
    "EVENT",
    "Behavior",
    "Chain",
    "Event",
    "Process",
    "PropertyReport",
    "RefinementObligation",
    "RefinementReport",
    "SignalTrace",
    "TAG_ZERO",
    "Tag",
    "as_tag",
    "behavior_from_flows",
    "check_determinism",
    "check_endochrony",
    "check_endo_isochrony",
    "check_flow_invariance",
    "check_isochrony",
    "common_unstretching",
    "flow_canonical",
    "flow_equivalent",
    "flow_equivalent_on",
    "flow_prefix_of",
    "flows",
    "is_present",
    "is_relaxation",
    "is_strict",
    "is_stretching",
    "is_value",
    "merge_chains",
    "natural_tags",
    "render_value",
    "strict_behavior",
    "stretch_closure",
    "stretch_equivalent",
    "stretching_function",
]
