"""Processes: sets of behaviors, synchronous and asynchronous composition.

Section 3 of the paper: "A process ``p ∈ P = P(B)`` is a set of behaviors that
have the same domain ``X`` (written ``vars(p)``).  Synchronous composition
``p | q`` is defined by the set of behaviors that extend a behavior ``b ∈ p``
by the restriction ``c/_vars(p)`` of a behavior ``c ∈ q`` if the projections
of ``b`` and ``c`` on ``vars(p) ∩ vars(q)`` are equal."

Denotationally, a process is an (often infinite) set of behaviors closed under
stretching.  This module represents processes *finitely*, by a set of
canonical (strict) representative behaviors on bounded traces, which is what
the refinement checks of the paper operate on; membership of an arbitrary
behavior is decided up to stretch-equivalence (:meth:`Process.accepts`).
Asynchronous composition ``p ‖ q`` likewise returns the canonical
representatives of the flow-equivalence classes it defines.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterable, Iterator, Mapping

from .behaviors import Behavior
from .relaxation import flow_canonical, flow_equivalent, flows
from .signals import SignalTrace
from .stretching import strict_behavior, stretch_equivalent


class Process:
    """A set of behaviors over a common set of variables.

    The constructor normalises every behavior to its strict representative, so
    a :class:`Process` is always *stretch-closed* in the canonical-set sense
    discussed in :mod:`repro.core.stretching`.
    """

    __slots__ = ("_variables", "_behaviors")

    def __init__(self, variables: Iterable[str], behaviors: Iterable[Behavior] = ()) -> None:
        self._variables = frozenset(variables)
        canonical: set[Behavior] = set()
        for behavior in behaviors:
            if behavior.variables != self._variables:
                missing = self._variables - behavior.variables
                extra = behavior.variables - self._variables
                # Behaviors may omit signals that are everywhere-absent: pad them.
                if extra:
                    raise ValueError(
                        f"behavior defines unexpected signals {sorted(extra)}; process variables are {sorted(self._variables)}"
                    )
                padded = dict(behavior.signals)
                for name in missing:
                    padded[name] = SignalTrace.empty()
                behavior = Behavior(padded)
            canonical.add(strict_behavior(behavior))
        self._behaviors = frozenset(canonical)

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def singleton(behavior: Behavior) -> "Process":
        """The process containing exactly (the class of) one behavior."""
        return Process(behavior.variables, [behavior])

    @staticmethod
    def from_columns(columns_list: Iterable[Mapping[str, list]]) -> "Process":
        """Build a process from a list of synchronous column tables."""
        behaviors = [Behavior.from_columns(c) for c in columns_list]
        variables: set[str] = set()
        for b in behaviors:
            variables |= b.variables
        return Process(variables, behaviors)

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._behaviors)

    def __iter__(self) -> Iterator[Behavior]:
        return iter(self._behaviors)

    def __contains__(self, behavior: object) -> bool:
        if not isinstance(behavior, Behavior):
            return False
        return self.accepts(behavior)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Process):
            return NotImplemented
        return self._variables == other._variables and self._behaviors == other._behaviors

    def __hash__(self) -> int:
        return hash((self._variables, self._behaviors))

    def __repr__(self) -> str:
        return f"Process(vars={sorted(self._variables)}, |behaviors|={len(self._behaviors)})"

    # -- observations --------------------------------------------------------------

    @property
    def variables(self) -> frozenset[str]:
        """``vars(p)``."""
        return self._variables

    @property
    def behaviors(self) -> frozenset[Behavior]:
        """The canonical (strict) behaviors of the process."""
        return self._behaviors

    def is_empty(self) -> bool:
        """True when the process admits no behavior."""
        return not self._behaviors

    def accepts(self, behavior: Behavior) -> bool:
        """Membership up to stretch-equivalence (the stretch-closed reading)."""
        if behavior.variables != self._variables:
            return False
        candidate = strict_behavior(behavior)
        return candidate in self._behaviors or any(
            stretch_equivalent(candidate, b) for b in self._behaviors
        )

    def accepts_flow(self, behavior: Behavior) -> bool:
        """Membership up to flow-equivalence (asynchronous observation)."""
        if behavior.variables != self._variables:
            return False
        target = flows(behavior)
        return any(flows(b) == target for b in self._behaviors)

    # -- composition -----------------------------------------------------------------

    def compose(self, other: "Process") -> "Process":
        """Synchronous composition ``p | q``."""
        shared = self._variables & other._variables
        variables = self._variables | other._variables
        result: list[Behavior] = []
        for mine in self._behaviors:
            mine_shared = mine.project(shared)
            for theirs in other._behaviors:
                # Shared signals must agree *as synchronous signals*, i.e. up to a
                # common stretching of the pair of projections.
                if shared:
                    if not stretch_equivalent(mine_shared, theirs.project(shared)):
                        continue
                    combined = _align_and_extend(mine, theirs, shared)
                    if combined is None:
                        continue
                else:
                    combined = _juxtapose(mine, theirs)
                result.append(combined)
        return Process(variables, result)

    def __or__(self, other: "Process") -> "Process":
        return self.compose(other)

    def async_compose(self, other: "Process") -> "Process":
        """Asynchronous composition ``p ‖ q`` (canonical representatives).

        Behaviors of ``p`` and ``q`` are combined whenever their shared
        signals carry the same value flows; synchronisation between the two
        sides is discarded, per the relaxation-based definition of the paper.
        """
        shared = self._variables & other._variables
        variables = self._variables | other._variables
        result: list[Behavior] = []
        for mine in self._behaviors:
            mine_flows = flows(mine.project(shared))
            for theirs in other._behaviors:
                if flows(theirs.project(shared)) != mine_flows:
                    continue
                own_part = mine.hide(shared)
                their_part = theirs.hide(shared)
                shared_part = flow_canonical(mine.project(shared))
                combined = Behavior(
                    {**own_part.signals, **_shift_block(their_part).signals, **shared_part.signals}
                )
                result.append(combined)
        return Process(variables, result)

    def __floordiv__(self, other: "Process") -> "Process":
        """``p // q`` is asynchronous composition (ASCII-friendly ‖)."""
        return self.async_compose(other)

    # -- restriction / projection -------------------------------------------------------

    def project(self, names: Iterable[str]) -> "Process":
        """``p|_X``: project every behavior on ``names``."""
        keep = [n for n in names if n in self._variables]
        return Process(keep, (b.project(keep) for b in self._behaviors))

    def hide(self, names: Iterable[str]) -> "Process":
        """``p / x``: restriction (hiding) of the names in ``names``."""
        drop = set(names)
        keep = self._variables - drop
        return Process(keep, (b.hide(drop) for b in self._behaviors))

    def rename(self, mapping: Mapping[str, str]) -> "Process":
        """Rename process variables."""
        variables = {mapping.get(n, n) for n in self._variables}
        return Process(variables, (b.rename(mapping) for b in self._behaviors))

    def filter(self, predicate: Callable[[Behavior], bool]) -> "Process":
        """The sub-process of behaviors satisfying ``predicate``."""
        return Process(self._variables, (b for b in self._behaviors if predicate(b)))

    def union(self, other: "Process") -> "Process":
        """Set union of two processes over the same variables."""
        if self._variables != other._variables:
            raise ValueError("union requires identical variable sets")
        return Process(self._variables, list(self._behaviors) + list(other._behaviors))


def _juxtapose(left: Behavior, right: Behavior) -> Behavior:
    """Combine behaviors with disjoint variables, keeping both tag scales."""
    return Behavior({**left.signals, **right.signals})


def _shift_block(behavior: Behavior) -> Behavior:
    """Offset a behavior's tags by one third to keep blocks distinguishable.

    Used when building canonical representatives of asynchronous composition:
    the relative tagging between the two sides is irrelevant, but offsetting
    avoids spuriously claiming synchronisation between unrelated signals.
    """
    if not behavior.variables:
        return behavior
    return behavior.retagged(lambda t: t.shifted(Fraction(1, 3)))


def _align_and_extend(left: Behavior, right: Behavior, shared: frozenset[str] | set[str]) -> Behavior | None:
    """Implement ``b ⊎ c/_vars(p)`` when the shared projections agree.

    The two behaviors may use different (but stretch-equivalent) tag scales
    for the shared signals; we re-express ``right`` on ``left``'s tag scale by
    composing the two stretching functions on shared tags, then extend.
    Returns ``None`` when the non-shared part of ``right`` cannot be
    consistently re-tagged (its private events interleave with shared events
    in a way that has no counterpart on ``left``'s scale) — in that case a
    fresh common stretching is built instead.
    """
    left_shared = left.project(shared)
    right_shared = right.project(shared)
    canonical = strict_behavior(right_shared)
    # Map: right's shared tags -> canonical tags -> left's shared tags.
    right_to_canon = _tag_mapping(right_shared, canonical)
    left_to_canon = _tag_mapping(left_shared, strict_behavior(left_shared))
    canon_to_left = {v: k for k, v in left_to_canon.items()}
    mapping = {rt: canon_to_left[ct] for rt, ct in right_to_canon.items() if ct in canon_to_left}

    def remap(tag):
        if tag in mapping:
            return mapping[tag]
        # Private tag of ``right``: keep relative order by interpolating.
        return tag.shifted(Fraction(1, 7))

    remapped_right = right.hide(shared).retagged(remap)
    try:
        return left.extend(remapped_right).extend(right.project(shared).retagged(lambda t: mapping[t]))
    except (KeyError, ValueError):
        return None


def _tag_mapping(source: Behavior, target: Behavior) -> dict:
    """Per-event tag correspondence between two stretch-equivalent behaviors."""
    mapping: dict = {}
    for name in source.variables:
        for (st, _), (tt, _) in zip(source[name].events, target[name].events):
            mapping[st] = tt
    return mapping
