"""Signals and events of the tagged polychronous model.

Section 3 of the paper: "An event ``e ∈ E = T × V`` relates a tag and a value.
A signal ``s ∈ S = T ⇀ V`` is a partial function relating a chain of tags to a
set of values."

A :class:`SignalTrace` is therefore an immutable, finite partial function from
tags to values whose domain is a chain.  (The name avoids clashing with the
SIGNAL-language notion of a *signal variable*, which lives in
:mod:`repro.signal`.)
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .tags import Chain, Tag, TagLike, as_tag, natural_tags
from .values import ABSENT, check_value, render_value


class Event:
    """An event ``(t, v)``: the occurrence of value ``v`` at tag ``t``."""

    __slots__ = ("tag", "value")

    def __init__(self, tag: TagLike, value: Any) -> None:
        self.tag = as_tag(tag)
        self.value = check_value(value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.tag == other.tag and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.tag, self.value))

    def __iter__(self) -> Iterator[Any]:
        return iter((self.tag, self.value))

    def __repr__(self) -> str:
        return f"Event({self.tag!s}, {render_value(self.value)})"


class SignalTrace:
    """A signal: a partial function from a chain of tags to values.

    The trace is immutable.  Equality is extensional (same tags, same values).
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[tuple[TagLike, Any]] | Mapping[TagLike, Any] = ()) -> None:
        if isinstance(events, Mapping):
            pairs = list(events.items())
        else:
            pairs = list(events)
        mapping: dict[Tag, Any] = {}
        for tag_like, value in pairs:
            tag = as_tag(tag_like)
            value = check_value(value)
            if tag in mapping and mapping[tag] != value:
                raise ValueError(f"conflicting values at {tag}: {mapping[tag]!r} vs {value!r}")
            mapping[tag] = value
        ordered = sorted(mapping.items(), key=lambda kv: kv[0])
        self._events: tuple[tuple[Tag, Any], ...] = tuple(ordered)

    # -- constructors --------------------------------------------------------

    @staticmethod
    def from_values(values: Sequence[Any], start: int = 0) -> "SignalTrace":
        """Build a *strict* signal carrying ``values`` at tags ``start..``."""
        tags = natural_tags(len(values), start)
        return SignalTrace(zip(tags, values))

    @staticmethod
    def empty() -> "SignalTrace":
        """The signal that is never present."""
        return SignalTrace()

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return (Event(t, v) for t, v in self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignalTrace):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:
        inner = " ".join(f"({t!s},{render_value(v)})" for t, v in self._events)
        return f"SignalTrace[{inner}]"

    # -- observations ---------------------------------------------------------

    @property
    def tags(self) -> Chain:
        """The domain ``tags(s)`` of the signal (a chain)."""
        return Chain(t for t, _ in self._events)

    @property
    def values(self) -> tuple[Any, ...]:
        """The sequence of values carried by the signal, in tag order."""
        return tuple(v for _, v in self._events)

    @property
    def events(self) -> tuple[tuple[Tag, Any], ...]:
        """The (tag, value) pairs in increasing tag order."""
        return self._events

    def is_empty(self) -> bool:
        """True when the signal carries no event."""
        return not self._events

    def is_present(self, t: TagLike) -> bool:
        """True when the signal is present at tag ``t``."""
        tag = as_tag(t)
        return any(et == tag for et, _ in self._events)

    def at(self, t: TagLike, default: Any = ABSENT) -> Any:
        """Value carried at tag ``t``, or ``default`` (ABSENT) when absent."""
        tag = as_tag(t)
        for et, value in self._events:
            if et == tag:
                return value
        return default

    def nth(self, n: int) -> Event:
        """The ``n``-th event of the signal (0-based)."""
        t, v = self._events[n]
        return Event(t, v)

    # -- transformations -------------------------------------------------------

    def retagged(self, mapping: Callable[[Tag], TagLike]) -> "SignalTrace":
        """Apply a tag transformation (used by stretching functions)."""
        return SignalTrace((mapping(t), v) for t, v in self._events)

    def strict(self) -> "SignalTrace":
        """The canonical strict form: same values, tags ``0..n-1``.

        This is the per-signal canonical representative used by relaxation
        and flow-equivalence (the ``(b)_≈`` construction of the paper).
        """
        return SignalTrace.from_values(self.values)

    def prefix(self, length: int) -> "SignalTrace":
        """The signal restricted to its first ``length`` events."""
        return SignalTrace(self._events[:length])

    def before(self, t: TagLike) -> "SignalTrace":
        """The signal restricted to tags strictly smaller than ``t``."""
        bound = as_tag(t)
        return SignalTrace((et, v) for et, v in self._events if et < bound)

    def upto(self, t: TagLike) -> "SignalTrace":
        """The signal restricted to tags not greater than ``t``."""
        bound = as_tag(t)
        return SignalTrace((et, v) for et, v in self._events if et <= bound)

    def shifted(self, delta: TagLike) -> "SignalTrace":
        """Uniformly displace every tag by ``delta``."""
        return self.retagged(lambda t: t.shifted(delta))

    def map_values(self, fn: Callable[[Any], Any]) -> "SignalTrace":
        """Apply ``fn`` to every value, keeping tags."""
        return SignalTrace((t, fn(v)) for t, v in self._events)

    def extended(self, t: TagLike, value: Any) -> "SignalTrace":
        """Return a new signal with an extra event ``(t, value)``."""
        return SignalTrace(self._events + ((as_tag(t), check_value(value)),))

    # -- relations --------------------------------------------------------------

    def same_flow(self, other: "SignalTrace") -> bool:
        """True when both signals carry the same values in the same order."""
        return self.values == other.values

    def is_stretching_of(self, other: "SignalTrace") -> bool:
        """True when ``self`` is obtained from ``other`` by a stretching.

        Per-signal stretching preserves the number of events, their order and
        their values; only the tags move (monotonically).
        """
        return self.values == other.values

    def render(self) -> str:
        """Human-readable single-line rendering (as in Fig. 1 of the paper)."""
        if not self._events:
            return "(empty)"
        return "  ".join(f"({t!s}, {render_value(v)})" for t, v in self._events)
