"""Translation of SpecC behaviors into SIGNAL processes.

Section 4 of the paper describes the encoding: "The translation of the
behavior ``ones`` in SIGNAL consists, first, of decomposing the syntactic
structure of the SpecC program into an intermediate representation that
renders the imperative structure of the original program [...].  In this
structure, each thread consists of a sequence of blocks (critical sections)
delimited by wait and notify synchronization statements.  Within such blocks,
basic control structures are then encoded.  A method call or a basic
operation, e.g. ``x = y + 1``, is encoded by an equation, e.g. either
``x = y$1 + 1 when c`` [...] conditioned by an activation clock ``c``.  A
conditional statement [...] is encoded by constraining the clock of P by x and
that of Q by not x.  Internal while loops are encoded by over-sampling."

The translator below implements exactly that intermediate representation: the
behavior is decomposed into elementary *steps* (one per basic operation, test,
wait or notify — the same decomposition the paper's RTL listing exhibits as
states S0..S7), each step becomes an activation condition on the master clock
``tick``, assignments become equations sampled by their step's condition and
referring to values of the previous transition (``y$1``), conditionals
constrain the clocks of their branches, while loops re-enter their test step
(over-sampling: the loop body runs at ticks where no new input is consumed),
and wait/notify become boolean input/event output signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from ..signal.ast import Expression as SignalExpression
from ..signal.ast import ProcessDefinition
from ..signal.dsl import ProcessBuilder, const, sig
from .ast import (
    Assign,
    Behavior,
    Binary,
    Break,
    If,
    Lit,
    MethodCall,
    Notify,
    SpecCExpression,
    SpecCStatement,
    Unary,
    Var,
    Wait,
    While,
)


class TranslationError(Exception):
    """Raised when a behavior uses a construct outside the translatable fragment."""


@dataclass
class FSMStep:
    """One elementary step of the intermediate representation."""

    index: int
    kind: str  # "assign" | "branch" | "wait" | "notify" | "halt"
    target: Optional[str] = None
    expression: Optional[SpecCExpression] = None
    condition: Optional[SpecCExpression] = None
    events: tuple[str, ...] = ()
    next: Optional[int] = None
    next_true: Optional[int] = None
    next_false: Optional[int] = None
    source: str = ""


@dataclass
class TranslationResult:
    """The SIGNAL encoding of a behavior plus its intermediate representation."""

    process: ProcessDefinition
    steps: list[FSMStep]
    state_signal: str
    input_ports: tuple[str, ...]
    output_ports: tuple[str, ...]
    wait_events: tuple[str, ...]
    notify_events: tuple[str, ...]
    variables: tuple[str, ...]

    def step_table(self) -> str:
        """Readable listing of the FSM steps (the paper's S0..S7 table)."""
        lines = [f"intermediate representation of {self.process.name} ({len(self.steps)} steps):"]
        for step in self.steps:
            lines.append(f"  S{step.index}: {step.source}")
        return "\n".join(lines)

    def design(self, **options: Any):
        """Wrap the translated process in a workbench :class:`Design` facade.

        The returned design keeps this translation available as its
        ``translation`` attribute (step table, port and event lists).
        """
        from ..workbench import Design

        return Design(self.process, translation=self, **options)


_SPECC_TO_SIGNAL_BINARY = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "mod",
    "&": "&",
    "|": "|",
    ">>": ">>",
    "<<": "<<",
    "==": "=",
    "!=": "/=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "&&": "and",
    "||": "or",
    "^": "xor",
}


class BehaviorTranslator:
    """Translate one :class:`~repro.specc.ast.Behavior` into SIGNAL."""

    def __init__(
        self,
        behavior: Behavior,
        name: Optional[str] = None,
        input_ports: Optional[Sequence[str]] = None,
        output_ports: Optional[Sequence[str]] = None,
    ) -> None:
        self.behavior = behavior
        self.name = name or behavior.name
        self.steps: list[FSMStep] = []
        self._reads: set[str] = set()
        self._writes: set[str] = set()
        self._waits: set[str] = set()
        self._notifies: set[str] = set()
        self._explicit_inputs = tuple(input_ports) if input_ports is not None else None
        self._explicit_outputs = tuple(output_ports) if output_ports is not None else None

    # -- intermediate representation ------------------------------------------------

    def _new_step(self, **kwargs) -> FSMStep:
        step = FSMStep(index=len(self.steps), **kwargs)
        self.steps.append(step)
        return step

    def _compile_block(self, statements: Sequence[SpecCStatement], exit_index_holder: list) -> tuple[int, list[FSMStep]]:
        """Compile a statement list; returns (entry_index, steps needing an exit patch)."""
        entry: Optional[int] = None
        pending: list[FSMStep] = []
        for statement in statements:
            step_entry, step_pending = self._compile_statement(statement)
            if entry is None:
                entry = step_entry
            for step in pending:
                self._patch(step, step_entry)
            pending = step_pending
        if entry is None:
            # Empty block: synthesise a no-op assign step (state advance only).
            step = self._new_step(kind="assign", target=None, expression=None, source="skip")
            entry = step.index
            pending = [step]
        return entry, pending

    def _patch(self, step: FSMStep, target: int) -> None:
        if step.kind == "branch":
            if step.next_true is None:
                step.next_true = target
            if step.next_false is None:
                step.next_false = target
        elif step.next is None:
            step.next = target

    def _compile_statement(self, statement: SpecCStatement) -> tuple[int, list[FSMStep]]:
        if isinstance(statement, Assign):
            self._reads |= statement.expression.variables()
            self._writes.add(statement.target)
            step = self._new_step(
                kind="assign",
                target=statement.target,
                expression=statement.expression,
                source=f"{statement.target} = ...",
            )
            return step.index, [step]
        if isinstance(statement, Wait):
            self._waits |= set(statement.events)
            step = self._new_step(kind="wait", events=statement.events, source=f"wait({', '.join(statement.events)})")
            return step.index, [step]
        if isinstance(statement, Notify):
            self._notifies.add(statement.event)
            step = self._new_step(kind="notify", events=(statement.event,), source=f"notify({statement.event})")
            return step.index, [step]
        if isinstance(statement, If):
            self._reads |= statement.condition.variables()
            branch = self._new_step(kind="branch", condition=statement.condition, source="if (...)")
            then_entry, then_pending = self._compile_block(statement.then, [])
            branch.next_true = then_entry
            if statement.otherwise:
                else_entry, else_pending = self._compile_block(statement.otherwise, [])
                branch.next_false = else_entry
                return branch.index, then_pending + else_pending
            return branch.index, then_pending + [branch]
        if isinstance(statement, While):
            self._reads |= statement.condition.variables()
            test = self._new_step(kind="branch", condition=statement.condition, source="while (...)")
            body_entry, body_pending = self._compile_block(statement.body, [])
            test.next_true = body_entry
            for step in body_pending:
                self._patch(step, test.index)
            # The loop exits through the false branch of the test.
            return test.index, [test]
        if isinstance(statement, Break):
            raise TranslationError("break statements are not supported by the SIGNAL translation; restructure the loop")
        if isinstance(statement, MethodCall):
            raise TranslationError(
                "channel method calls must be inlined before translation "
                "(translate the channel's methods as part of the caller)"
            )
        raise TranslationError(f"cannot translate statement {statement!r}")

    # -- expression translation --------------------------------------------------------------

    def _signal_expression(self, expression: SpecCExpression, previous: dict[str, str]) -> SignalExpression:
        if isinstance(expression, Lit):
            return const(expression.value)
        if isinstance(expression, Var):
            name = expression.name
            if name in previous:
                return sig(previous[name])
            return sig(name)
        if isinstance(expression, Unary):
            operand = self._signal_expression(expression.operand, previous)
            if expression.op == "!":
                return ~operand
            if expression.op == "-":
                return -operand
            if expression.op == "+":
                return operand
            raise TranslationError(f"unary operator {expression.op!r} has no SIGNAL counterpart")
        if isinstance(expression, Binary):
            left = self._signal_expression(expression.left, previous)
            right = self._signal_expression(expression.right, previous)
            op = _SPECC_TO_SIGNAL_BINARY.get(expression.op)
            if op is None:
                raise TranslationError(f"binary operator {expression.op!r} has no SIGNAL counterpart")
            from ..signal.ast import BinaryOp

            return BinaryOp(op, left, right)
        raise TranslationError(f"cannot translate expression {expression!r}")

    # -- main entry point ---------------------------------------------------------------------

    def translate(self) -> TranslationResult:
        """Produce the SIGNAL process encoding the behavior."""
        entry, pending = self._compile_block(list(self.behavior.body), [])
        halt = self._new_step(kind="halt", source="halt")
        restart_target = entry if self.behavior.repeat else halt.index
        for step in pending:
            self._patch(step, restart_target)
        halt.next = entry if self.behavior.repeat else halt.index

        fsm_variables = tuple(sorted(self.behavior.locals))
        ports = set(self.behavior.ports)
        input_ports = (
            self._explicit_inputs
            if self._explicit_inputs is not None
            else tuple(sorted((self._reads - set(fsm_variables)) & ports))
        )
        output_ports = (
            self._explicit_outputs
            if self._explicit_outputs is not None
            else tuple(sorted((self._writes - set(fsm_variables)) & ports))
        )
        unknown_writes = self._writes - set(fsm_variables) - set(output_ports)
        if unknown_writes:
            raise TranslationError(
                f"{self.name}: assignments to {sorted(unknown_writes)} target neither a local variable nor a port"
            )

        builder = ProcessBuilder(self.name)
        tick = builder.input("tick", "event")
        wait_inputs = {event: builder.input(event, "boolean") for event in sorted(self._waits)}
        port_inputs = {port: builder.input(port, "integer") for port in input_ports}
        port_outputs = {port: builder.output(port, "integer") for port in output_ports}
        notify_outputs = {event: builder.output(event, "event") for event in sorted(self._notifies)}
        state = builder.local("state", "integer")
        state_prev = builder.local("state_prev", "integer")
        variable_signals = {name: builder.local(name, "integer") for name in fsm_variables}
        previous_signals = {name: builder.local(f"{name}_prev", "integer") for name in fsm_variables}

        previous_map = {name: f"{name}_prev" for name in fsm_variables}

        # State register.
        builder.define(state_prev, state.delayed(entry))

        def at_step(index: int):
            return state_prev.eq(index)

        # Next-state function: one sampled branch per step, merged by default.
        next_state: Optional[SignalExpression] = None
        for step in self.steps:
            if step.kind == "assign" or step.kind == "notify":
                branch: SignalExpression = const(step.next if step.next is not None else halt.index)
            elif step.kind == "wait":
                fired = None
                for event in step.events:
                    term = wait_inputs[event]
                    fired = term if fired is None else (fired | term)
                branch = (
                    const(step.next if step.next is not None else halt.index)
                    .when(fired)
                    .default(const(step.index))
                )
            elif step.kind == "branch":
                condition = self._signal_expression(step.condition, previous_map)
                branch = (
                    const(step.next_true if step.next_true is not None else halt.index)
                    .when(condition)
                    .default(const(step.next_false if step.next_false is not None else halt.index))
                )
            else:  # halt
                branch = const(step.next if step.next is not None else step.index)
            sampled = branch.when(at_step(step.index))
            next_state = sampled if next_state is None else next_state.default(sampled)
        builder.define(state, next_state.default(state_prev))
        builder.synchronize(state, tick)

        # Variable registers: updated by the assign steps, held otherwise.
        for name in fsm_variables:
            builder.define(previous_signals[name], variable_signals[name].delayed(self.behavior.locals[name] or 0))
            update: Optional[SignalExpression] = None
            for step in self.steps:
                if step.kind != "assign" or step.target != name or step.expression is None:
                    continue
                value = self._signal_expression(step.expression, previous_map).when(at_step(step.index))
                update = value if update is None else update.default(value)
            if update is None:
                builder.define(variable_signals[name], previous_signals[name])
            else:
                builder.define(variable_signals[name], update.default(previous_signals[name]))
            builder.synchronize(variable_signals[name], tick)

        # Output ports: present only at the steps that write them.
        for port in output_ports:
            emission: Optional[SignalExpression] = None
            for step in self.steps:
                if step.kind != "assign" or step.target != port or step.expression is None:
                    continue
                value = self._signal_expression(step.expression, previous_map).when(at_step(step.index))
                emission = value if emission is None else emission.default(value)
            if emission is None:
                raise TranslationError(f"{self.name}: output port {port!r} is never written")
            builder.define(port_outputs[port], emission)

        # Notify events: present at the notify steps.
        for event in sorted(self._notifies):
            pulses: Optional[SignalExpression] = None
            for step in self.steps:
                if step.kind != "notify" or step.events != (event,):
                    continue
                pulse = tick.clock().when(at_step(step.index))
                pulses = pulse if pulses is None else pulses.default(pulse)
            builder.define(notify_outputs[event], pulses)

        # Inputs are read at the master clock.
        for port_signal in port_inputs.values():
            builder.synchronize(port_signal, tick)
        for event_signal in wait_inputs.values():
            builder.synchronize(event_signal, tick)

        process = builder.build()
        return TranslationResult(
            process=process,
            steps=self.steps,
            state_signal="state",
            input_ports=tuple(input_ports),
            output_ports=tuple(output_ports),
            wait_events=tuple(sorted(self._waits)),
            notify_events=tuple(sorted(self._notifies)),
            variables=fsm_variables,
        )


def translate_behavior(
    behavior: Behavior,
    name: Optional[str] = None,
    input_ports: Optional[Sequence[str]] = None,
    output_ports: Optional[Sequence[str]] = None,
) -> TranslationResult:
    """Translate ``behavior`` into a master-clocked SIGNAL process.

    The resulting process has one ``event`` input ``tick`` (the activation
    clock of the critical sections), one boolean input per waited event, one
    integer input per read port, one integer output per written port and one
    event output per notified event.  All signals are synchronous to ``tick``
    except the outputs, which are present only at the steps that produce them
    — exactly the clock discipline of the paper's encoding of ``ones``.
    """
    return BehaviorTranslator(behavior, name, input_ports, output_ports).translate()
