"""Convenience builders for SpecC-like designs.

The AST in :mod:`repro.specc.ast` is already dataclass-based; these builders
merely remove the boilerplate of assembling behaviors, channels and designs in
the examples and the EPC case study.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from .ast import (
    Assign,
    Behavior,
    Channel,
    Design,
    ExpressionLike,
    If,
    Instance,
    Method,
    MethodCall,
    Notify,
    Return,
    SpecCStatement,
    Wait,
    While,
    as_specc_expression,
)


class BehaviorBuilder:
    """Incremental construction of a :class:`~repro.specc.ast.Behavior`."""

    def __init__(self, name: str, ports: Sequence[str] = (), repeat: bool = False) -> None:
        self.name = name
        self.ports = tuple(ports)
        self.repeat = repeat
        self._locals: dict[str, Any] = {}
        self._body: list[SpecCStatement] = []

    def local(self, name: str, init: Any = 0) -> "BehaviorBuilder":
        """Declare a local variable with an initial value."""
        self._locals[name] = init
        return self

    def assign(self, target: str, expression: ExpressionLike) -> "BehaviorBuilder":
        """Append ``target = expression;``."""
        self._body.append(Assign(target, expression))
        return self

    def wait(self, *events: str) -> "BehaviorBuilder":
        """Append ``wait(events...);``."""
        self._body.append(Wait(*events))
        return self

    def notify(self, event: str) -> "BehaviorBuilder":
        """Append ``notify(event);``."""
        self._body.append(Notify(event))
        return self

    def when(self, condition: ExpressionLike, then: Sequence[SpecCStatement], otherwise: Sequence[SpecCStatement] = ()) -> "BehaviorBuilder":
        """Append an ``if`` statement."""
        self._body.append(If(condition, then, otherwise))
        return self

    def loop(self, condition: ExpressionLike, body: Sequence[SpecCStatement]) -> "BehaviorBuilder":
        """Append a ``while`` loop."""
        self._body.append(While(condition, body))
        return self

    def call(self, channel: str, method: str, arguments: Sequence[ExpressionLike] = (), result: Optional[str] = None) -> "BehaviorBuilder":
        """Append a channel method call."""
        self._body.append(MethodCall(channel, method, arguments, result))
        return self

    def statement(self, statement: SpecCStatement) -> "BehaviorBuilder":
        """Append an arbitrary statement."""
        self._body.append(statement)
        return self

    def build(self) -> Behavior:
        """Produce the behavior."""
        return Behavior(self.name, self.ports, dict(self._locals), list(self._body), self.repeat)


class ChannelBuilder:
    """Incremental construction of a :class:`~repro.specc.ast.Channel`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._state: dict[str, Any] = {}
        self._methods: dict[str, Method] = {}

    def state(self, name: str, init: Any = 0) -> "ChannelBuilder":
        """Declare a channel state variable."""
        self._state[name] = init
        return self

    def method(
        self,
        name: str,
        parameters: Sequence[str] = (),
        body: Sequence[SpecCStatement] = (),
        locals: Optional[Mapping[str, Any]] = None,
    ) -> "ChannelBuilder":
        """Declare a channel method."""
        self._methods[name] = Method(name, tuple(parameters), list(body), dict(locals or {}))
        return self

    def build(self) -> Channel:
        """Produce the channel."""
        return Channel(self.name, dict(self._state), dict(self._methods))


class DesignBuilder:
    """Incremental construction of a :class:`~repro.specc.ast.Design`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._variables: dict[str, Any] = {}
        self._events: list[str] = []
        self._channels: dict[str, Channel] = {}
        self._instances: list[Instance] = []

    def variable(self, name: str, init: Any = 0) -> "DesignBuilder":
        """Declare a design-level shared variable."""
        self._variables[name] = init
        return self

    def event(self, *names: str) -> "DesignBuilder":
        """Declare design-level events."""
        self._events.extend(names)
        return self

    def channel(self, channel: Channel) -> "DesignBuilder":
        """Register a channel."""
        self._channels[channel.name] = channel
        return self

    def instance(self, behavior: Behavior, name: Optional[str] = None, bindings: Optional[Mapping[str, str]] = None) -> "DesignBuilder":
        """Instantiate a behavior with optional port bindings."""
        self._instances.append(Instance(behavior, name or behavior.name, dict(bindings or {})))
        return self

    def build(self) -> Design:
        """Produce the design."""
        return Design(self.name, dict(self._variables), tuple(self._events), dict(self._channels), list(self._instances))
