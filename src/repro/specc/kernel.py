"""A discrete-event simulation kernel for the SpecC-like language.

"Modeling the architecture layer in SIGNAL requires an abstraction of the
virtual simulation kernel semantics for the wait/notify statements" (Section 4
of the paper).  This module *is* that simulation kernel, implemented the other
way around: cooperative processes (Python generators produced by the
interpreter) are scheduled by a wait/notify discipline with delta cycles, the
way a SpecC/SystemC kernel arbitrates suspension and resumption of its
threads.

The kernel knows nothing about the AST: a process is any generator yielding
:class:`WaitRequest` / :class:`NotifyRequest` actions; the interpreter in
:mod:`repro.specc.interpreter` produces such generators from behaviors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional


@dataclass(frozen=True)
class WaitRequest:
    """Yielded by a process to suspend until one of ``events`` is notified."""

    events: tuple[str, ...]


@dataclass(frozen=True)
class NotifyRequest:
    """Yielded by a process to notify ``event`` (delta-delayed, as in SpecC)."""

    event: str


#: The type of a schedulable process.
ProcessGenerator = Generator[object, None, None]


@dataclass
class KernelProcess:
    """Book-keeping for one scheduled process."""

    name: str
    generator: ProcessGenerator
    waiting_on: tuple[str, ...] = ()
    finished: bool = False


@dataclass
class KernelTrace:
    """A record of the scheduling decisions taken during a run."""

    notifications: list[tuple[int, str, str]] = field(default_factory=list)
    resumptions: list[tuple[int, str, str]] = field(default_factory=list)
    delta_cycles: int = 0

    def notified_events(self) -> list[str]:
        """The sequence of notified events."""
        return [event for _, _, event in self.notifications]


class KernelDeadlock(Exception):
    """Raised when every process is waiting and no notification is pending."""


class SimulationKernel:
    """The wait/notify scheduler.

    Processes run until they yield.  A yielded :class:`NotifyRequest` records
    the event; pending notifications are delivered at the end of the current
    delta cycle, resuming every process waiting on them (SpecC's delta-delayed
    ``notify``).  The run ends when every process has finished, when nothing
    can make progress anymore (all waiting, nothing pending — a deadlock if
    processes remain), or when the delta-cycle budget is exhausted.
    """

    def __init__(self, name: str = "kernel") -> None:
        self.name = name
        self.processes: list[KernelProcess] = []
        self.trace = KernelTrace()
        self._pending_notifications: list[str] = []
        self._ready: list[KernelProcess] = []

    # -- registration -------------------------------------------------------------

    def register(self, name: str, generator: ProcessGenerator) -> KernelProcess:
        """Register a process; it becomes ready to run."""
        process = KernelProcess(name, generator)
        self.processes.append(process)
        self._ready.append(process)
        return process

    # -- execution ------------------------------------------------------------------

    def notify(self, event: str, source: str = "environment") -> None:
        """Schedule a notification (from a process or from the test-bench)."""
        self._pending_notifications.append(event)
        self.trace.notifications.append((self.trace.delta_cycles, source, event))

    def _run_process(self, process: KernelProcess) -> None:
        try:
            request = next(process.generator)
        except StopIteration:
            process.finished = True
            return
        if isinstance(request, NotifyRequest):
            self.notify(request.event, source=process.name)
            # The process continues in the same delta cycle after a notify.
            self._ready.append(process)
        elif isinstance(request, WaitRequest):
            process.waiting_on = request.events
        else:
            raise TypeError(f"process {process.name!r} yielded an unknown request {request!r}")

    def _deliver_notifications(self) -> bool:
        if not self._pending_notifications:
            return False
        delivered = set(self._pending_notifications)
        self._pending_notifications = []
        woken = False
        for process in self.processes:
            if process.finished or not process.waiting_on:
                continue
            if delivered & set(process.waiting_on):
                self.trace.resumptions.append(
                    (self.trace.delta_cycles, process.name, ",".join(sorted(delivered & set(process.waiting_on))))
                )
                process.waiting_on = ()
                self._ready.append(process)
                woken = True
        return woken

    def run(self, max_deltas: int = 10000, strict: bool = False) -> KernelTrace:
        """Run until quiescence.

        Args:
            max_deltas: bound on delta cycles (protection against livelock).
            strict: raise :class:`KernelDeadlock` when unfinished processes
                remain blocked at quiescence (otherwise the run simply stops —
                the usual SpecC test-bench behaviour).
        """
        while self.trace.delta_cycles < max_deltas:
            while self._ready:
                process = self._ready.pop(0)
                if not process.finished:
                    self._run_process(process)
            self.trace.delta_cycles += 1
            if not self._deliver_notifications():
                break
        blocked = [p.name for p in self.processes if not p.finished]
        if blocked and strict and not self._ready:
            raise KernelDeadlock(f"{self.name}: processes {blocked} are blocked on wait()")
        return self.trace

    def all_finished(self) -> bool:
        """True when every registered process ran to completion."""
        return all(p.finished for p in self.processes)

    def blocked_processes(self) -> list[str]:
        """Names of the processes still waiting at the end of a run."""
        return [p.name for p in self.processes if not p.finished and p.waiting_on]
