"""Abstract syntax of the SpecC-like system-level language.

The paper studies the refinement of designs written in SpecC/SystemC:
*behaviors* (threads with a ``main``), *channels* (shared objects whose methods
encapsulate synchronisation), *events* with ``wait``/``notify``, ports bound to
shared variables, and ``par`` composition.  This module defines a Python AST
for that language fragment — rich enough to express every listing of the paper
(the ``ones`` behavior, the ``ChMP`` channel, the bus, the RTL FSM) — which the
discrete-event kernel interprets and the translator encodes into SIGNAL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union


# --------------------------------------------------------------------------- expressions


class SpecCExpression:
    """Base class of expressions (arithmetic / boolean over variables and ports)."""

    def variables(self) -> set[str]:
        """Variables read by the expression."""
        return set()


@dataclass(frozen=True)
class Var(SpecCExpression):
    """A variable or port read."""

    name: str

    def variables(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class Lit(SpecCExpression):
    """A literal constant."""

    value: Any


@dataclass(frozen=True)
class Unary(SpecCExpression):
    """Unary operator application (``!``, ``-``, ``~``)."""

    op: str
    operand: SpecCExpression

    def variables(self) -> set[str]:
        return self.operand.variables()


@dataclass(frozen=True)
class Binary(SpecCExpression):
    """Binary operator application (C-like operator set)."""

    op: str
    left: SpecCExpression
    right: SpecCExpression

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()


ExpressionLike = Union[SpecCExpression, int, bool, str]


def as_specc_expression(value: ExpressionLike) -> SpecCExpression:
    """Coerce Python literals and names into expressions."""
    if isinstance(value, SpecCExpression):
        return value
    if isinstance(value, (bool, int)):
        return Lit(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot interpret {value!r} as a SpecC expression")


def var(name: str) -> Var:
    """Shorthand for :class:`Var`."""
    return Var(name)


def lit(value: Any) -> Lit:
    """Shorthand for :class:`Lit`."""
    return Lit(value)


def binop(op: str, left: ExpressionLike, right: ExpressionLike) -> Binary:
    """Shorthand for :class:`Binary`."""
    return Binary(op, as_specc_expression(left), as_specc_expression(right))


# --------------------------------------------------------------------------- statements


class SpecCStatement:
    """Base class of statements."""


@dataclass
class Assign(SpecCStatement):
    """``target = expression;`` (targets are variables or output ports)."""

    target: str
    expression: SpecCExpression

    def __init__(self, target: str, expression: ExpressionLike) -> None:
        self.target = target
        self.expression = as_specc_expression(expression)


@dataclass
class If(SpecCStatement):
    """``if (condition) { then } else { otherwise }``."""

    condition: SpecCExpression
    then: list[SpecCStatement]
    otherwise: list[SpecCStatement] = field(default_factory=list)

    def __init__(
        self,
        condition: ExpressionLike,
        then: Sequence[SpecCStatement],
        otherwise: Sequence[SpecCStatement] = (),
    ) -> None:
        self.condition = as_specc_expression(condition)
        self.then = list(then)
        self.otherwise = list(otherwise)


@dataclass
class While(SpecCStatement):
    """``while (condition) { body }``."""

    condition: SpecCExpression
    body: list[SpecCStatement]

    def __init__(self, condition: ExpressionLike, body: Sequence[SpecCStatement]) -> None:
        self.condition = as_specc_expression(condition)
        self.body = list(body)


@dataclass
class Wait(SpecCStatement):
    """``wait(e1, e2, ...);`` — suspend until one of the events is notified."""

    events: tuple[str, ...]

    def __init__(self, *events: str) -> None:
        if not events:
            raise ValueError("wait needs at least one event")
        self.events = tuple(events)


@dataclass
class Notify(SpecCStatement):
    """``notify(e);`` — wake every process waiting on the event."""

    event: str


@dataclass
class MethodCall(SpecCStatement):
    """``channel.method(args...)`` with an optional result variable."""

    channel: str
    method: str
    arguments: tuple[SpecCExpression, ...]
    result: Optional[str] = None

    def __init__(
        self,
        channel: str,
        method: str,
        arguments: Sequence[ExpressionLike] = (),
        result: Optional[str] = None,
    ) -> None:
        self.channel = channel
        self.method = method
        self.arguments = tuple(as_specc_expression(a) for a in arguments)
        self.result = result


@dataclass
class Return(SpecCStatement):
    """``return expression;`` (inside channel methods)."""

    expression: Optional[SpecCExpression] = None

    def __init__(self, expression: Optional[ExpressionLike] = None) -> None:
        self.expression = as_specc_expression(expression) if expression is not None else None


@dataclass
class Break(SpecCStatement):
    """``break;`` out of the innermost while loop."""


# --------------------------------------------------------------------------- declarations


@dataclass
class Method:
    """A channel method: parameters, local variables and a body."""

    name: str
    parameters: tuple[str, ...] = ()
    body: list[SpecCStatement] = field(default_factory=list)
    locals: dict[str, Any] = field(default_factory=dict)


@dataclass
class Channel:
    """A channel: shared state plus synchronising methods (e.g. the paper's ChMP)."""

    name: str
    state: dict[str, Any] = field(default_factory=dict)
    methods: dict[str, Method] = field(default_factory=dict)

    def method(self, name: str) -> Method:
        """Look up a method by name."""
        try:
            return self.methods[name]
        except KeyError:
            raise KeyError(f"channel {self.name!r} has no method {name!r}") from None


@dataclass
class Behavior:
    """A behavior: ports, local variables and a ``main`` body (a thread)."""

    name: str
    ports: tuple[str, ...] = ()
    locals: dict[str, Any] = field(default_factory=dict)
    body: list[SpecCStatement] = field(default_factory=list)
    repeat: bool = False
    """When true, ``main`` restarts after completing (the ``while(1)`` shell of
    the paper's listings); wait statements still yield control."""


@dataclass
class Instance:
    """An instantiated behavior with its port bindings."""

    behavior: Behavior
    name: str
    bindings: dict[str, str] = field(default_factory=dict)

    def bound(self, port: str) -> str:
        """The design-level variable a port is bound to (default: same name)."""
        return self.bindings.get(port, port)


@dataclass
class Design:
    """A complete design: shared variables, events, channels and instances run in ``par``."""

    name: str
    variables: dict[str, Any] = field(default_factory=dict)
    events: tuple[str, ...] = ()
    channels: dict[str, Channel] = field(default_factory=dict)
    instances: list[Instance] = field(default_factory=list)

    def instance(self, name: str) -> Instance:
        """Look up an instance by name."""
        for instance in self.instances:
            if instance.name == name:
                return instance
        raise KeyError(f"design {self.name!r} has no instance {name!r}")
