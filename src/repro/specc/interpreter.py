"""Interpretation of SpecC designs on the discrete-event kernel.

Each behavior instance becomes a cooperative process (a Python generator)
reading and writing the design's shared variable store; channel methods run
inline in the calling thread, as in SpecC.  The interpreter records every
write to designated *observed* variables, producing the port-traffic flows
that the refinement checks compare against the SIGNAL encodings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from .ast import (
    Assign,
    Behavior,
    Binary,
    Break,
    Channel,
    Design,
    If,
    Instance,
    Lit,
    Method,
    MethodCall,
    Notify,
    Return,
    SpecCExpression,
    SpecCStatement,
    Unary,
    Var,
    Wait,
    While,
)
from .kernel import NotifyRequest, SimulationKernel, WaitRequest


class SpecCRuntimeError(Exception):
    """Raised on evaluation errors (unknown variable, bad operator, ...)."""


_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
    "%": lambda a, b: a % b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    ">>": lambda a, b: a >> b,
    "<<": lambda a, b: a << b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
}

_UNARY = {
    "-": lambda a: -a,
    "!": lambda a: not a,
    "~": lambda a: ~a,
    "+": lambda a: a,
}


class _BreakLoop(Exception):
    """Internal: unwinds to the innermost while loop."""


class _ReturnValue(Exception):
    """Internal: unwinds a channel method call."""

    def __init__(self, value: Any) -> None:
        super().__init__(value)
        self.value = value


@dataclass
class _Context:
    """Execution context of one thread of control.

    Attributes:
        frame: local variables (behavior locals or method locals + parameters).
        scope: channel name when executing a channel method (prefixes state
            variables, as in ``ChMP.ready_flag``), empty in behavior bodies.
        instance: the behavior instance this thread belongs to.
        rename: port → design-variable bindings of the instance.
    """

    frame: dict[str, Any]
    scope: str
    instance: Instance
    rename: Mapping[str, str]


@dataclass
class WriteRecord:
    """One observed write: which instance wrote which value to which variable."""

    instance: str
    variable: str
    value: Any


@dataclass
class DesignRun:
    """The outcome of interpreting a design."""

    design: Design
    store: dict[str, Any]
    writes: list[WriteRecord] = field(default_factory=list)
    finished: bool = False
    blocked: list[str] = field(default_factory=list)
    notified_events: list[str] = field(default_factory=list)

    def flow(self, variable: str) -> list[Any]:
        """The sequence of values written to ``variable`` (its flow)."""
        return [w.value for w in self.writes if w.variable == variable]

    def flows(self, variables: Iterable[str]) -> dict[str, list[Any]]:
        """Flows of several observed variables."""
        return {name: self.flow(name) for name in variables}


class Interpreter:
    """Interpret one design on a fresh kernel."""

    def __init__(self, design: Design, observed: Iterable[str] = ()) -> None:
        self.design = design
        self.kernel = SimulationKernel(design.name)
        self.store: dict[str, Any] = dict(design.variables)
        for channel in design.channels.values():
            for key, value in channel.state.items():
                self.store.setdefault(f"{channel.name}.{key}", value)
        self.observed = set(observed)
        self.writes: list[WriteRecord] = []

    # -- variable access -----------------------------------------------------------

    def _resolve(self, name: str, context: _Context) -> str:
        name = context.rename.get(name, name)
        scoped = f"{context.scope}.{name}" if context.scope else name
        if scoped in self.store:
            return scoped
        return name

    def _read(self, name: str, context: _Context) -> Any:
        if name in context.frame:
            return context.frame[name]
        key = self._resolve(name, context)
        if key not in self.store:
            raise SpecCRuntimeError(f"unknown variable {name!r} (scope {context.scope or 'design'})")
        return self.store[key]

    def _write(self, name: str, value: Any, context: _Context) -> None:
        if name in context.frame:
            context.frame[name] = value
            return
        key = self._resolve(name, context)
        self.store[key] = value
        if key in self.observed:
            self.writes.append(WriteRecord(context.instance.name, key, value))

    # -- expression evaluation ----------------------------------------------------------

    def _evaluate(self, expression: SpecCExpression, context: _Context) -> Any:
        if isinstance(expression, Lit):
            return expression.value
        if isinstance(expression, Var):
            return self._read(expression.name, context)
        if isinstance(expression, Unary):
            operand = self._evaluate(expression.operand, context)
            try:
                return _UNARY[expression.op](operand)
            except KeyError:
                raise SpecCRuntimeError(f"unknown unary operator {expression.op!r}") from None
        if isinstance(expression, Binary):
            left = self._evaluate(expression.left, context)
            right = self._evaluate(expression.right, context)
            try:
                return _BINARY[expression.op](left, right)
            except KeyError:
                raise SpecCRuntimeError(f"unknown binary operator {expression.op!r}") from None
        raise SpecCRuntimeError(f"cannot evaluate {expression!r}")

    # -- statement execution ---------------------------------------------------------------

    def _execute(self, statements: Iterable[SpecCStatement], context: _Context):
        for statement in statements:
            if isinstance(statement, Assign):
                value = self._evaluate(statement.expression, context)
                self._write(statement.target, value, context)
            elif isinstance(statement, If):
                branch = statement.then if self._evaluate(statement.condition, context) else statement.otherwise
                yield from self._execute(branch, context)
            elif isinstance(statement, While):
                try:
                    while self._evaluate(statement.condition, context):
                        yield from self._execute(statement.body, context)
                except _BreakLoop:
                    pass
            elif isinstance(statement, Break):
                raise _BreakLoop()
            elif isinstance(statement, Wait):
                yield WaitRequest(statement.events)
            elif isinstance(statement, Notify):
                yield NotifyRequest(statement.event)
            elif isinstance(statement, MethodCall):
                yield from self._call_method(statement, context)
            elif isinstance(statement, Return):
                value = self._evaluate(statement.expression, context) if statement.expression else None
                raise _ReturnValue(value)
            else:
                raise SpecCRuntimeError(f"unknown statement {statement!r}")

    def _call_method(self, call: MethodCall, context: _Context):
        channel = self.design.channels.get(call.channel)
        if channel is None:
            raise SpecCRuntimeError(f"unknown channel {call.channel!r}")
        method = channel.method(call.method)
        arguments = [self._evaluate(a, context) for a in call.arguments]
        method_frame = dict(method.locals)
        method_frame.update(dict(zip(method.parameters, arguments)))
        method_context = _Context(method_frame, channel.name, context.instance, {})
        result: Any = None
        try:
            yield from self._execute(method.body, method_context)
        except _ReturnValue as returned:
            result = returned.value
        if call.result is not None:
            self._write(call.result, result, context)

    # -- behaviors ------------------------------------------------------------------------------

    def _behavior_process(self, instance: Instance):
        behavior = instance.behavior
        rename = {port: instance.bound(port) for port in behavior.ports}
        context = _Context(dict(behavior.locals), "", instance, rename)
        while True:
            yield from self._execute(behavior.body, context)
            if not behavior.repeat:
                break

    # -- public API ---------------------------------------------------------------------------------

    def run(self, max_deltas: int = 10000) -> DesignRun:
        """Interpret the design until quiescence."""
        for instance in self.design.instances:
            self.kernel.register(instance.name, self._behavior_process(instance))
        trace = self.kernel.run(max_deltas=max_deltas)
        return DesignRun(
            design=self.design,
            store=dict(self.store),
            writes=list(self.writes),
            finished=self.kernel.all_finished(),
            blocked=self.kernel.blocked_processes(),
            notified_events=trace.notified_events(),
        )


def run_design(design: Design, observed: Iterable[str] = (), max_deltas: int = 10000) -> DesignRun:
    """One-shot interpretation helper."""
    return Interpreter(design, observed).run(max_deltas=max_deltas)
