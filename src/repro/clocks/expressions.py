"""Clock expressions: the abstract domain of the SIGNAL clock calculus.

A *clock* is the set of instants at which a signal is present.  The clock
calculus manipulates clocks symbolically:

* ``ClockVar(x)`` — the clock of signal ``x`` (written ``^x`` in SIGNAL);
* ``TrueSample(x)`` / ``FalseSample(x)`` — the instants at which the boolean
  signal ``x`` is present and true (written ``[x]``) or present and false
  (``[¬x]``);
* ``Meet``, ``Join``, ``Diff`` — intersection (``^*``), union (``^+``) and
  difference (``^-``) of clocks;
* ``EmptyClock`` — the null clock (``^0``).

Canonical comparison of clock expressions is delegated to a
:class:`~repro.clocks.bdd.BDDManager`: the clock of a boolean signal ``x``
splits into the two samples, ``clk(x) = [x] ∨ [¬x]`` and ``[x] ∧ [¬x] = ∅``,
which the BDD encoding enforces.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .bdd import BDDManager, BDDNode


class ClockExpression:
    """Base class of clock expressions."""

    def meet(self, other: "ClockExpression") -> "ClockExpression":
        """Clock intersection (``^*``)."""
        return Meet(self, other)

    def join(self, other: "ClockExpression") -> "ClockExpression":
        """Clock union (``^+``)."""
        return Join(self, other)

    def minus(self, other: "ClockExpression") -> "ClockExpression":
        """Clock difference (``^-``)."""
        return Diff(self, other)

    def atoms(self) -> set[str]:
        """Signal names occurring in the expression."""
        return set()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClockExpression) and repr(self) == repr(other)

    def __hash__(self) -> int:
        return hash(repr(self))


class EmptyClock(ClockExpression):
    """The clock that never ticks (``^0``)."""

    def __repr__(self) -> str:
        return "^0"


class ClockVar(ClockExpression):
    """The clock of a signal: ``^x``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def atoms(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"^{self.name}"


class TrueSample(ClockExpression):
    """``[x]``: the instants at which the boolean signal ``x`` is true."""

    def __init__(self, name: str) -> None:
        self.name = name

    def atoms(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"[{self.name}]"


class FalseSample(ClockExpression):
    """``[¬x]``: the instants at which the boolean signal ``x`` is false."""

    def __init__(self, name: str) -> None:
        self.name = name

    def atoms(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"[¬{self.name}]"


class _Binary(ClockExpression):
    symbol = "?"

    def __init__(self, left: ClockExpression, right: ClockExpression) -> None:
        self.left = left
        self.right = right

    def atoms(self) -> set[str]:
        return self.left.atoms() | self.right.atoms()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class Meet(_Binary):
    """Clock intersection."""

    symbol = "^*"


class Join(_Binary):
    """Clock union."""

    symbol = "^+"


class Diff(_Binary):
    """Clock difference."""

    symbol = "^-"


class ClockAlgebra:
    """Canonical reasoning on clock expressions through a BDD encoding.

    Each signal ``x`` contributes a presence variable ``p:x``; each signal used
    as a sampling condition additionally contributes a value variable ``v:x``.
    The encoding maps ``^x ↦ p:x``, ``[x] ↦ p:x ∧ v:x`` and
    ``[¬x] ↦ p:x ∧ ¬v:x``, which validates the clock-calculus identities
    ``[x] ^+ [¬x] = ^x`` and ``[x] ^* [¬x] = ^0`` by construction.
    """

    def __init__(self, manager: Optional[BDDManager] = None) -> None:
        self.manager = manager or BDDManager()

    # -- encoding -----------------------------------------------------------------

    @staticmethod
    def presence_variable(name: str) -> str:
        """BDD variable standing for "signal ``name`` is present"."""
        return f"p:{name}"

    @staticmethod
    def value_variable(name: str) -> str:
        """BDD variable standing for "signal ``name`` carries value true"."""
        return f"v:{name}"

    def encode(self, expression: ClockExpression) -> BDDNode:
        """The BDD of a clock expression."""
        manager = self.manager
        if isinstance(expression, EmptyClock):
            return manager.false
        if isinstance(expression, ClockVar):
            return manager.var(self.presence_variable(expression.name))
        if isinstance(expression, TrueSample):
            return manager.conj(
                manager.var(self.presence_variable(expression.name)),
                manager.var(self.value_variable(expression.name)),
            )
        if isinstance(expression, FalseSample):
            return manager.conj(
                manager.var(self.presence_variable(expression.name)),
                manager.nvar(self.value_variable(expression.name)),
            )
        if isinstance(expression, Meet):
            return manager.conj(self.encode(expression.left), self.encode(expression.right))
        if isinstance(expression, Join):
            return manager.disj(self.encode(expression.left), self.encode(expression.right))
        if isinstance(expression, Diff):
            return manager.diff(self.encode(expression.left), self.encode(expression.right))
        raise TypeError(f"unknown clock expression {expression!r}")

    # -- relations ----------------------------------------------------------------------

    def equal(self, left: ClockExpression, right: ClockExpression) -> bool:
        """Canonical clock equality."""
        return self.manager.equivalent(self.encode(left), self.encode(right))

    def included(self, left: ClockExpression, right: ClockExpression) -> bool:
        """Clock inclusion (every instant of ``left`` is an instant of ``right``)."""
        return self.manager.entails(self.encode(left), self.encode(right))

    def disjoint(self, left: ClockExpression, right: ClockExpression) -> bool:
        """True when the two clocks never tick together."""
        return self.manager.is_false(self.manager.conj(self.encode(left), self.encode(right)))

    def is_empty(self, expression: ClockExpression) -> bool:
        """True when the clock is provably the null clock."""
        return self.manager.is_false(self.encode(expression))

    def simplify(self, expression: ClockExpression) -> str:
        """A readable canonical form (sum of cubes over presence/value literals)."""
        return self.manager.to_expression(self.encode(expression))


def join_all(expressions: Iterable[ClockExpression]) -> ClockExpression:
    """Union of a collection of clocks (``^0`` when empty)."""
    result: ClockExpression = EmptyClock()
    first = True
    for expression in expressions:
        if first:
            result = expression
            first = False
        else:
            result = Join(result, expression)
    return result


def meet_all(expressions: Iterable[ClockExpression]) -> ClockExpression:
    """Intersection of a non-empty collection of clocks."""
    iterator = iter(expressions)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("meet_all needs at least one clock") from None
    for expression in iterator:
        result = Meet(result, expression)
    return result
