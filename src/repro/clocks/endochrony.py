"""Static endochrony analysis based on the clock hierarchy.

A process is endochronous when the presence of every signal can be inferred
from the values carried by faster signals, starting from a single master
clock: "given an external (asynchronous) stimulation of its inputs, it
reconstructs a unique synchronous behavior" (Section 3 of the paper).

The static criterion implemented here is the one the SIGNAL compiler uses as a
sufficient condition:

1. the clock hierarchy has a single root (a master clock exists);
2. every non-root class is *governed*: some defining clock expression of a
   signal in the class only involves the presence of ancestor signals and the
   values of signals computed at ancestor classes — i.e. the decision to
   activate the slower clock can be taken from data already available;
3. classes containing only signals without defining equations (typically free
   inputs) are not governed, unless they are the master itself.

The exact semantic definition remains available as a bounded check in
:func:`repro.core.properties.check_endochrony`; the two are compared in the
test suite and the benchmarks (experiment E4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..signal.ast import ProcessDefinition
from .calculus import ClockSystem, clock_system
from .expressions import ClockAlgebra
from .hierarchy import ClockClass, ClockHierarchy, build_hierarchy


@dataclass
class EndochronyReport:
    """Verdict of the static endochrony analysis."""

    process_name: str
    is_endochronous: bool
    master_signals: tuple[str, ...] = ()
    free_clocks: tuple[str, ...] = ()
    issues: list[str] = field(default_factory=list)
    hierarchy: Optional[ClockHierarchy] = None

    def __bool__(self) -> bool:
        return self.is_endochronous

    def summary(self) -> str:
        """Human-readable explanation of the verdict."""
        verdict = "endochronous" if self.is_endochronous else "NOT endochronous"
        lines = [f"{self.process_name}: statically {verdict}"]
        if self.master_signals:
            lines.append(f"  master clock: {{{', '.join(self.master_signals)}}}")
        for issue in self.issues:
            lines.append(f"  issue: {issue}")
        return "\n".join(lines)


def _strict_ancestor_signals(hierarchy: ClockHierarchy, clock_class: ClockClass) -> set[str]:
    signals: set[str] = set()
    current = clock_class
    while current.parent is not None:
        current = hierarchy.classes[current.parent]
        signals.update(current.signals)
    return signals


def _class_is_governed(hierarchy: ClockHierarchy, clock_class: ClockClass) -> tuple[bool, str]:
    """Check criterion 2 for one non-root class.

    Returns ``(governed, reason)`` where ``reason`` explains a negative answer.
    """
    system = hierarchy.system
    algebra = hierarchy.algebra
    ancestors = _strict_ancestor_signals(hierarchy, clock_class)
    members = set(clock_class.signals)

    from .expressions import ClockVar

    # Defining expressions: the clock of an equation target, the clock of a
    # synthetic condition, or the other side of an explicit clock constraint
    # involving a member of the class.
    candidates: list[tuple[str, object, bool]] = []
    for name in clock_class.signals:
        if name in system.clock_of:
            candidates.append((name, system.clock_of[name], False))
        if name in system.conditions:
            candidates.append((name, system.conditions[name].clock, False))
    for equation in system.equations:
        for side, other in ((equation.left, equation.right), (equation.right, equation.left)):
            if isinstance(side, ClockVar) and side.name in members:
                candidates.append((side.name, other, True))
    if not candidates:
        return False, (
            "class {" + ", ".join(sorted(members)) + "} has no defining equation "
            "(its activation cannot be inferred from faster signals)"
        )

    failures: list[str] = []
    for name, expression, _from_constraint in candidates:
        support = algebra.manager.support(algebra.encode(expression))
        # The activation decision must be expressible from strictly faster
        # (ancestor) signals only — presence *and* value variables alike.
        foreign = {
            signal
            for variable in support
            for _, _, signal in [variable.partition(":")]
            if signal not in ancestors
        }
        if not foreign:
            return True, ""
        failures.append(f"{name} depends on {', '.join(sorted(foreign))}")
    return False, (
        "class {" + ", ".join(sorted(members)) + "} is not governed by its ancestry (" + "; ".join(failures) + ")"
    )


def analyse_endochrony(
    source: ProcessDefinition | ClockSystem | ClockHierarchy,
    algebra: Optional[ClockAlgebra] = None,
) -> EndochronyReport:
    """Run the static endochrony analysis (see module docstring for the criterion)."""
    if isinstance(source, ClockHierarchy):
        hierarchy = source
    else:
        system = source if isinstance(source, ClockSystem) else clock_system(source)
        hierarchy = build_hierarchy(system, algebra)
    system = hierarchy.system

    issues: list[str] = []
    if hierarchy.inconsistent:
        issues.append("the clock constraints are unsatisfiable")

    if not hierarchy.classes:
        return EndochronyReport(system.process_name, True, hierarchy=hierarchy)

    if not hierarchy.is_singly_rooted():
        root_signals = [
            "{" + ", ".join(sorted(hierarchy.classes[r].signals)) + "}" for r in sorted(hierarchy.roots)
        ]
        issues.append(f"no unique master clock: {len(hierarchy.roots)} maximal classes {', '.join(root_signals)}")

    master = hierarchy.master_class()
    master_signals = tuple(sorted(master.signals)) if master is not None else ()

    for clock_class in hierarchy.classes:
        if clock_class.parent is None:
            continue
        governed, reason = _class_is_governed(hierarchy, clock_class)
        if not governed:
            issues.append(reason)

    return EndochronyReport(
        process_name=system.process_name,
        is_endochronous=not issues,
        master_signals=master_signals,
        free_clocks=tuple(system.free_signals()),
        issues=issues,
        hierarchy=hierarchy,
    )


def master_clock_of(process: ProcessDefinition) -> tuple[str, ...]:
    """The signals clocked at the master clock of ``process`` (if any)."""
    return build_hierarchy(process).master_signals()
