"""Clock hierarchization: arranging the clocks of a process into a forest.

The SIGNAL compiler (reference [1] of the paper, Amagbegnon et al.) organises
the clocks of a process into a hierarchy: clocks that are provably equal are
merged into one class, and a class is placed *under* another when its clock is
provably included in its parent's.  A single-rooted hierarchy exhibits the
*master clock* of the process, the key step towards generating sequential code
and towards the paper's "optimized recombination of behaviors ... using clock
hierarchization techniques".

The construction works on the *whole constraint system*: all clock equations
produced by the calculus are conjoined into one BDD ``Φ`` (over presence and
value variables), and equality / inclusion between signal clocks is decided as
entailment under ``Φ``.  This is what lets ``counter := val$1 init 0`` place
``counter`` and ``val`` in the same class, and ``val := (0 when reset) default
(counter + 1)`` place ``reset`` strictly below them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..signal.ast import ProcessDefinition
from .bdd import BDDNode
from .calculus import ClockSystem, clock_system
from .expressions import ClockAlgebra


@dataclass
class ClockClass:
    """An equivalence class of provably synchronous signals."""

    index: int
    signals: list[str]
    clock: BDDNode
    parent: Optional[int] = None
    children: list[int] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"ClockClass({self.index}, signals={self.signals})"


@dataclass
class ClockHierarchy:
    """The forest of clock classes of a process."""

    process_name: str
    classes: list[ClockClass]
    roots: list[int]
    algebra: ClockAlgebra
    system: ClockSystem
    constraint: BDDNode
    inconsistent: bool = False

    # -- queries -----------------------------------------------------------------

    def class_of(self, signal: str) -> Optional[ClockClass]:
        """The class containing ``signal`` (None for unknown signals)."""
        for clock_class in self.classes:
            if signal in clock_class.signals:
                return clock_class
        return None

    def synchronous(self, left: str, right: str) -> bool:
        """True when the two signals are provably synchronous."""
        left_class = self.class_of(left)
        right_class = self.class_of(right)
        return left_class is not None and left_class is right_class

    def faster_or_equal(self, left: str, right: str) -> bool:
        """True when ``right``'s clock is provably included in ``left``'s."""
        left_class = self.class_of(left)
        right_class = self.class_of(right)
        if left_class is None or right_class is None:
            return False
        if left_class is right_class:
            return True
        current = right_class
        while current.parent is not None:
            current = self.classes[current.parent]
            if current is left_class:
                return True
        return False

    def is_singly_rooted(self) -> bool:
        """True when the hierarchy is a tree (a master clock exists)."""
        return len(self.roots) == 1

    def master_class(self) -> Optional[ClockClass]:
        """The root class when the hierarchy is a tree."""
        if self.is_singly_rooted():
            return self.classes[self.roots[0]]
        return None

    def master_signals(self) -> tuple[str, ...]:
        """The signals clocked at the master clock (empty if no master)."""
        master = self.master_class()
        return tuple(sorted(master.signals)) if master is not None else ()

    def depth(self) -> int:
        """Height of the forest (0 for an empty hierarchy)."""

        def depth_of(index: int) -> int:
            clock_class = self.classes[index]
            if not clock_class.children:
                return 1
            return 1 + max(depth_of(child) for child in clock_class.children)

        return max((depth_of(root) for root in self.roots), default=0)

    def ancestors(self, signal: str) -> list[ClockClass]:
        """The chain of strictly faster classes above ``signal``'s class."""
        clock_class = self.class_of(signal)
        chain: list[ClockClass] = []
        while clock_class is not None and clock_class.parent is not None:
            clock_class = self.classes[clock_class.parent]
            chain.append(clock_class)
        return chain

    def render(self) -> str:
        """ASCII rendering of the clock forest."""
        lines = [f"clock hierarchy of {self.process_name} ({len(self.classes)} classes):"]
        if self.inconsistent:
            lines.append("  (warning: the clock constraints are unsatisfiable)")

        def walk(index: int, prefix: str) -> None:
            clock_class = self.classes[index]
            lines.append(f"{prefix}{{{', '.join(sorted(clock_class.signals))}}}")
            for child in sorted(clock_class.children):
                walk(child, prefix + "    ")

        for root in sorted(self.roots):
            walk(root, "  ")
        return "\n".join(lines)


def constraint_formula(system: ClockSystem, algebra: ClockAlgebra) -> BDDNode:
    """The conjunction ``Φ`` of every clock equation of the system (as a BDD)."""
    manager = algebra.manager
    phi = manager.true
    for equation in system.equations:
        left = algebra.encode(equation.left)
        right = algebra.encode(equation.right)
        phi = manager.conj(phi, manager.neg(manager.xor(left, right)))
    return phi


def build_hierarchy(
    source: ProcessDefinition | ClockSystem,
    algebra: Optional[ClockAlgebra] = None,
) -> ClockHierarchy:
    """Build the clock hierarchy of a process (or of a pre-computed clock system)."""
    system = source if isinstance(source, ClockSystem) else clock_system(source)
    algebra = algebra or ClockAlgebra()
    manager = algebra.manager

    names = list(dict.fromkeys(list(system.signals) + list(system.conditions)))
    presence = {name: manager.var(algebra.presence_variable(name)) for name in names}

    phi = constraint_formula(system, algebra)
    inconsistent = manager.is_false(phi)
    if inconsistent:
        # Fall back to an unconstrained context so that the structure is still usable.
        phi = manager.true

    def provably_equal(a: str, b: str) -> bool:
        return manager.entails(phi, manager.neg(manager.xor(presence[a], presence[b])))

    def provably_included(a: str, b: str) -> bool:
        return manager.entails(phi, manager.implies(presence[a], presence[b]))

    # Group names into classes of provably synchronous signals.
    classes: list[ClockClass] = []
    assignment: dict[str, int] = {}
    for name in names:
        placed = False
        for clock_class in classes:
            if provably_equal(name, clock_class.signals[0]):
                clock_class.signals.append(name)
                assignment[name] = clock_class.index
                placed = True
                break
        if not placed:
            index = len(classes)
            classes.append(ClockClass(index, [name], presence[name]))
            assignment[name] = index

    # Strict inclusion order between classes.
    strictly_below: dict[int, set[int]] = {c.index: set() for c in classes}
    for lower in classes:
        for upper in classes:
            if lower.index == upper.index:
                continue
            if provably_included(lower.signals[0], upper.signals[0]):
                strictly_below[lower.index].add(upper.index)

    # Transitive reduction: the parent of a class is a minimal strict superset.
    for clock_class in classes:
        uppers = strictly_below[clock_class.index]
        minimal = [
            candidate
            for candidate in uppers
            if not any(candidate in strictly_below[other] for other in uppers if other != candidate)
        ]
        parent = min(minimal) if minimal else None
        clock_class.parent = parent
        if parent is not None:
            classes[parent].children.append(clock_class.index)

    roots = [c.index for c in classes if c.parent is None]
    return ClockHierarchy(system.process_name, classes, roots, algebra, system, phi, inconsistent)
