"""Extraction of clock constraints from SIGNAL processes (the clock calculus).

For every equation ``x := e`` the calculus derives the clock of ``e`` as a
:class:`~repro.clocks.expressions.ClockExpression` and records the constraint
``^x = C(e)``; explicit clock constraints (``a ^= b``) contribute their own
equations.  Sampling conditions that are not plain signal references (e.g.
``data = 0`` in the paper's ``ones`` process) are given synthetic condition
names so that ``[data = 0]`` becomes a first-class sample clock whose carrier
is synchronous with ``data``.

The resulting :class:`ClockSystem` is what the hierarchization
(:mod:`repro.clocks.hierarchy`) and the static endochrony analysis
(:mod:`repro.clocks.endochrony`) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..signal.ast import (
    BinaryOp,
    Cell,
    ClockBinary,
    ClockConstraint,
    ClockOf,
    Constant,
    Default,
    Definition,
    Delay,
    Expression,
    FunctionCall,
    ProcessDefinition,
    SignalRef,
    UnaryOp,
    When,
    expand,
)
from ..signal.printer import render_expression
from .expressions import (
    ClockAlgebra,
    ClockExpression,
    ClockVar,
    Diff,
    EmptyClock,
    FalseSample,
    Join,
    Meet,
    TrueSample,
)


@dataclass(frozen=True)
class ClockEquation:
    """One constraint of the clock system: ``left = right`` (as clocks)."""

    left: ClockExpression
    right: ClockExpression
    origin: str

    def __repr__(self) -> str:
        return f"{self.left!r} = {self.right!r}  ({self.origin})"


@dataclass
class SyntheticCondition:
    """A boolean sampling condition given a synthetic signal name."""

    name: str
    expression: Expression
    clock: ClockExpression


@dataclass
class ClockSystem:
    """The clock constraints of a process.

    Attributes:
        process_name: name of the analysed process.
        clock_of: for every *defined* signal, the clock of its defining
            expression (free signals keep their own ``^x``).
        equations: all derived clock equations.
        conditions: synthetic conditions introduced for non-trivial samplings.
        signals: every signal of the flattened process.
        inputs / outputs: interface signals.
    """

    process_name: str
    clock_of: dict[str, ClockExpression] = field(default_factory=dict)
    equations: list[ClockEquation] = field(default_factory=list)
    conditions: dict[str, SyntheticCondition] = field(default_factory=dict)
    signals: tuple[str, ...] = ()
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()

    def clock(self, name: str) -> ClockExpression:
        """The clock expression associated with ``name`` (``^name`` if free)."""
        return self.clock_of.get(name, ClockVar(name))

    def free_signals(self) -> tuple[str, ...]:
        """Signals whose clock is not constrained by any equation."""
        constrained = set(self.clock_of)
        for equation in self.equations:
            constrained |= {a for a in equation.left.atoms() | equation.right.atoms()}
        return tuple(sorted(set(self.signals) - set(self.clock_of)))

    def render(self) -> str:
        """Human-readable listing of the clock system."""
        lines = [f"clock system of {self.process_name}:"]
        for name in sorted(self.clock_of):
            lines.append(f"  ^{name} = {self.clock_of[name]!r}")
        for condition in self.conditions.values():
            lines.append(f"  condition {condition.name}: {render_expression(condition.expression)} @ {condition.clock!r}")
        for equation in self.equations:
            if equation.origin.startswith("constraint"):
                lines.append(f"  {equation!r}")
        return "\n".join(lines)


class ClockCalculus:
    """Derive the :class:`ClockSystem` of a process definition."""

    def __init__(self, process: ProcessDefinition) -> None:
        self.process = expand(process)
        self.system = ClockSystem(
            process_name=process.name,
            signals=tuple(self.process.all_names),
            inputs=tuple(self.process.input_names),
            outputs=tuple(self.process.output_names),
        )
        self._condition_counter = 0

    # -- public API -----------------------------------------------------------------

    def run(self) -> ClockSystem:
        """Extract every clock constraint of the process."""
        for definition in self.process.definitions():
            clock = self.clock_of_expression(definition.expression)
            if clock is None:
                # Constant right-hand side: the clock of the target is unconstrained.
                continue
            self.system.clock_of[definition.target] = clock
            self.system.equations.append(
                ClockEquation(ClockVar(definition.target), clock, f"definition of {definition.target}")
            )
        for index, constraint in enumerate(self.process.clock_constraints()):
            clocks = [self.clock_of_expression(op) or ClockVar("__constant__") for op in constraint.operands]
            for left, right in zip(clocks, clocks[1:]):
                self.system.equations.append(
                    ClockEquation(left, right, f"constraint #{index + 1} ({constraint.kind})")
                )
        return self.system

    # -- clock of an expression --------------------------------------------------------

    def clock_of_expression(self, expression: Expression) -> Optional[ClockExpression]:
        """The clock of ``expression`` (``None`` for constants: context-driven)."""
        if isinstance(expression, SignalRef):
            return ClockVar(expression.name)
        if isinstance(expression, Constant):
            return None
        if isinstance(expression, Delay):
            return self.clock_of_expression(expression.operand)
        if isinstance(expression, ClockOf):
            return self.clock_of_expression(expression.operand)
        if isinstance(expression, When):
            sample = self._sample_clock(expression.condition, negated=False)
            operand_clock = self.clock_of_expression(expression.operand)
            if operand_clock is None:
                return sample
            return Meet(operand_clock, sample)
        if isinstance(expression, Default):
            left = self.clock_of_expression(expression.left)
            right = self.clock_of_expression(expression.right)
            if left is None or right is None:
                # A constant branch absorbs the merge: the clock is context-driven
                # above the non-constant branch.
                return left or right
            return Join(left, right)
        if isinstance(expression, Cell):
            operand = self.clock_of_expression(expression.operand)
            sample = self._sample_clock(expression.clock, negated=False)
            if operand is None:
                return sample
            return Join(operand, sample)
        if isinstance(expression, ClockBinary):
            left = self.clock_of_expression(expression.left) or EmptyClock()
            right = self.clock_of_expression(expression.right) or EmptyClock()
            if expression.op == "^*":
                return Meet(left, right)
            if expression.op == "^+":
                return Join(left, right)
            return Diff(left, right)
        if isinstance(expression, (UnaryOp, BinaryOp, FunctionCall)):
            operands = list(expression.children())
            clocks = [self.clock_of_expression(o) for o in operands]
            non_constant = [c for c in clocks if c is not None]
            if not non_constant:
                return None
            result = non_constant[0]
            for clock in non_constant[1:]:
                result = Meet(result, clock)
            return result
        raise TypeError(f"cannot compute the clock of {expression!r}")

    # -- sampling conditions --------------------------------------------------------------

    def _sample_clock(self, condition: Expression, negated: bool) -> ClockExpression:
        if isinstance(condition, SignalRef):
            name = condition.name
            declaration = self.process.declaration_of(name)
            if declaration is not None and declaration.type == "event":
                # Sampling on an event signal is sampling on its presence.
                return ClockVar(name)
            return FalseSample(name) if negated else TrueSample(name)
        if isinstance(condition, UnaryOp) and condition.op == "not":
            return self._sample_clock(condition.operand, not negated)
        if isinstance(condition, Constant):
            if bool(condition.value) != negated:
                # ``when true``: the sample is the whole context clock; encode as a
                # fresh always-true condition over nothing — the empty meet — which
                # we approximate by a synthetic condition carried by itself.
                pass
            return self._synthetic(condition, negated)
        return self._synthetic(condition, negated)

    def _synthetic(self, condition: Expression, negated: bool) -> ClockExpression:
        rendered = render_expression(condition)
        existing = None
        for synthetic in self.system.conditions.values():
            if render_expression(synthetic.expression) == rendered:
                existing = synthetic
                break
        if existing is None:
            self._condition_counter += 1
            name = f"cond#{self._condition_counter}"
            clock = self.clock_of_expression(condition) or ClockVar(name)
            existing = SyntheticCondition(name, condition, clock)
            self.system.conditions[name] = existing
            self.system.equations.append(
                ClockEquation(ClockVar(name), clock, f"condition {name} = {rendered}")
            )
        return FalseSample(existing.name) if negated else TrueSample(existing.name)


def clock_system(process: ProcessDefinition) -> ClockSystem:
    """Convenience wrapper: run the clock calculus on ``process``."""
    return ClockCalculus(process).run()


def check_clock_system(system: ClockSystem, algebra: Optional[ClockAlgebra] = None) -> list[str]:
    """Detect trivially inconsistent equations (clock provably empty on one side only).

    Returns a list of human-readable diagnostics (empty when nothing suspicious
    is found).  A full consistency proof is the job of the verification layer;
    this check catches the common modelling errors (sampling on an always-false
    condition, differences that erase a clock entirely).
    """
    algebra = algebra or ClockAlgebra()
    diagnostics: list[str] = []
    for equation in system.equations:
        left_empty = algebra.is_empty(equation.left)
        right_empty = algebra.is_empty(equation.right)
        if left_empty != right_empty:
            diagnostics.append(
                f"{system.process_name}: equation {equation!r} equates an empty clock with a non-empty one"
            )
    return diagnostics
