"""A small reduced ordered binary decision diagram (ROBDD) package.

The SIGNAL compiler's clock calculus manipulates boolean formulas over
presence and value conditions; canonicalising them is what lets the compiler
decide clock equivalence, inclusion and emptiness.  This module provides the
minimal ROBDD machinery needed for that: a manager with hash-consed nodes,
the ``ite`` combinator, the usual boolean connectives, restriction,
satisfiability and model enumeration.

The same engine is reused by the verification layer to represent state
predicates symbolically: quantification, variable renaming and the combined
relational product (``and_exists``) are the primitives the symbolic
reachability engine of :mod:`repro.verification.symbolic` builds its image
computation from.

Two interchangeable cores implement the manager:

* ``core="object"`` — the reference implementation: one Python
  :class:`BDDNode` object per node, dict-based unique table, per-operation
  dict caches.  Kept as the differential oracle.
* ``core="array"`` (the default) — the hot core of
  :mod:`repro.clocks.bdd_array`: nodes are indices into flat parallel
  ``var/low/high`` arrays, edges are integers carrying a *complement* bit
  (so negation is O(1) and each diagram is shared with its complement), the
  unique table is an open-addressed integer hash table, and every boolean
  connective collapses into a single ITE primitive backed by one lossy
  array-mapped computed cache with standard-triple normalisation.

``BDDManager(...)`` dispatches between them via the ``core=`` keyword,
defaulting to the ``REPRO_BDD_CORE`` environment variable (mirroring
``REPRO_STEP_COMPILE``).  Both cores expose the same node handle API
(``variable``/``low``/``high``/``identifier``/``is_terminal``) with
hash-consed ``is``-identity, so the clock calculus, the symbolic engines,
the parallel image layer and the persistent cache run unmodified on either.

Variable ordering is dynamic: beyond the static first-use order the callers
establish with :meth:`BDDManager.declare`, the manager implements the
classical in-place adjacent *level exchange* and group-aware Rudell
*sifting* (:meth:`BDDManager.reorder`), auto-triggered on unique-table
growth when ``auto_reorder`` is on.  Every exchange rewrites the affected
nodes in place — same handle, same identifier, same boolean function — so
node references held by callers and name-based renaming maps stay valid
across reorders.  :meth:`BDDManager.group_variables` pins variable tuples
(the symbolic engines' prime/unprime pairs) adjacent through every reorder.
"""

from __future__ import annotations

import os
import weakref
from typing import Iterable, Iterator, Mapping, Optional, Sequence


class NodeBudgetExceeded(RuntimeError):
    """The unique table outgrew the manager's declared ``node_budget``.

    Raised *before* the node that would overflow is created, so the diagram
    is left consistent; benchmarking uses this to demonstrate orderings a
    static encoding cannot survive.  The budget is not enforced *during* a
    reorder (an exception mid-exchange would corrupt the diagram) — growth
    there is bounded instead by the sifting ``max_growth`` abort factor,
    and auto-reorder checkpoints arm early (at half the budget) so sifting
    gets a chance to shrink the table before the budget can fire.
    """


#: Name of the environment variable selecting the default BDD core, and the
#: fallback when it is unset.  Mirrors ``REPRO_STEP_COMPILE``: CI runs the
#: same suites under both values, everyone else gets the fast core with the
#: object core kept as the oracle.
BDD_CORE_ENV = "REPRO_BDD_CORE"
DEFAULT_BDD_CORE = "array"

#: Core registry, filled in as the implementations are defined (the array
#: core registers itself from :mod:`repro.clocks.bdd_array`, imported at the
#: bottom of this module).
_CORES: dict[str, type] = {}


def resolve_bdd_core(core: Optional[str] = None) -> str:
    """The effective core name: explicit argument, else env, else default."""
    chosen = core if core is not None else (os.environ.get(BDD_CORE_ENV) or DEFAULT_BDD_CORE)
    if chosen not in ("object", "array"):
        raise ValueError(f"unknown BDD core {chosen!r} (choose 'object' or 'array')")
    return chosen


#: Process-wide accumulators over every manager, so test harnesses can record
#: peak BDD pressure per benchmark without threading managers around.
#: ``core_speedup`` is written by ``benchmarks/bench_bdd_core.py`` (the
#: measured array-vs-object relational throughput ratio); 0.0 elsewhere.
GLOBAL_STATS = {
    "managers": 0,
    "peak_nodes": 0,
    "reorders": 0,
    "cache_hits": 0,
    "cache_misses": 0,
    "core_speedup": 0.0,
}

#: Live managers, so :func:`global_stats` can fold their cache counters in
#: without the managers having to push on every operation.
_MANAGERS: "weakref.WeakSet[BDDManager]" = weakref.WeakSet()


def reset_global_stats() -> None:
    """Zero the process-wide BDD counters (per-benchmark bookkeeping)."""
    GLOBAL_STATS.update(
        managers=0, peak_nodes=0, reorders=0, cache_hits=0, cache_misses=0, core_speedup=0.0
    )
    for manager in list(_MANAGERS):
        manager._stat_base_hits = manager.cache_hits
        manager._stat_base_misses = manager.cache_misses


def global_stats() -> dict:
    """A snapshot of the process-wide BDD counters.

    Cache hits/misses are summed over the live managers (relative to the
    last :func:`reset_global_stats`) plus whatever finalised managers
    flushed into the accumulators.
    """
    snapshot = dict(GLOBAL_STATS)
    for manager in list(_MANAGERS):
        snapshot["cache_hits"] += manager.cache_hits - manager._stat_base_hits
        snapshot["cache_misses"] += manager.cache_misses - manager._stat_base_misses
    return snapshot


def record_core_speedup(ratio: float) -> None:
    """Record the measured array-vs-object throughput ratio (benchmarks)."""
    GLOBAL_STATS["core_speedup"] = round(float(ratio), 3)


#: Version tag of the :func:`dump_nodes` payload layout.  Bump on any change
#: to the node-table encoding so stale persisted dumps are rejected as a
#: cache miss instead of being mis-decoded.  Both cores emit and accept the
#: same layout — payloads are cross-core portable.
DUMP_FORMAT = 1


def dump_nodes(manager: "BDDManager", roots: Sequence["BDDNode"]) -> dict:
    """Serialise the diagrams of ``roots`` into a pure-data payload.

    The payload is a children-first node table over the dump-time variable
    order — plain strings, ints and lists, so it pickles/JSONs freely::

        {"format": DUMP_FORMAT,
         "order": [...variable names, dump-time level order, support only...],
         "nodes": [[variable, low_index, high_index], ...],
         "roots": [index, ...]}          # parallel to ``roots``

    Indices 0 and 1 denote the false/true terminals; internal nodes are
    numbered from 2 in table order.  Shared sub-diagrams are emitted once,
    so the table size equals the shared node count of the root set.  The
    payload records *which* order the nodes were reduced under, but
    :func:`load_nodes` does not depend on it — diagrams are rebuilt
    bottom-up with ``ite``, which re-canonicalises under whatever order the
    target manager currently has.
    """
    index: dict[int, int] = {manager.false.identifier: 0, manager.true.identifier: 1}
    nodes: list[list] = []
    for root in roots:
        if root.identifier in index:
            continue
        stack: list[tuple[BDDNode, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node.identifier in index:
                continue
            if expanded:
                nodes.append([node.variable, index[node.low.identifier], index[node.high.identifier]])
                index[node.identifier] = len(nodes) + 1
            else:
                stack.append((node, True))
                stack.append((node.high, False))
                stack.append((node.low, False))
    used = {entry[0] for entry in nodes}
    return {
        "format": DUMP_FORMAT,
        "order": [name for name in manager.variables if name in used],
        "nodes": nodes,
        "roots": [index[root.identifier] for root in roots],
    }


def load_nodes(manager: "BDDManager", payload: Mapping) -> list["BDDNode"]:
    """Rebuild the diagrams of a :func:`dump_nodes` payload in ``manager``.

    Returns the root nodes, parallel to the ``roots`` the dump was taken
    over.  The target manager may have a *different* current variable order
    than the dump-time one: every table entry is rebuilt bottom-up through
    ``ite(var, high, low)``, which re-reduces the diagram under the target
    order, and hash-consing guarantees that reloading a function the
    manager already holds yields the identical node object.  Variables the
    payload mentions that the manager has not seen are declared (appended
    to the order) on the fly.

    Raises:
        ValueError: on a payload whose ``format`` tag or table shape this
            version does not understand (a torn or stale cache entry).
    """
    if not isinstance(payload, Mapping) or payload.get("format") != DUMP_FORMAT:
        raise ValueError(f"unsupported BDD dump payload (format {payload.get('format')!r})"
                         if isinstance(payload, Mapping) else "BDD dump payload is not a mapping")
    loader = getattr(manager, "_load_payload", None)
    if loader is not None:
        return loader(payload)
    for name in payload["order"]:
        manager.declare(name)
    table: list[BDDNode] = [manager.false, manager.true]
    for entry in payload["nodes"]:
        variable, low, high = entry
        if not isinstance(variable, str) or not (0 <= low < len(table)) or not (0 <= high < len(table)):
            raise ValueError(f"malformed BDD dump entry {entry!r}")
        table.append(manager.ite(manager.var(variable), table[high], table[low]))
    roots = payload["roots"]
    if any(not isinstance(index, int) or not (0 <= index < len(table)) for index in roots):
        raise ValueError("BDD dump root index out of range")
    return [table[index] for index in roots]


class IncrementalDumper:
    """Serialise successive root sets against one growing shared node table.

    :func:`dump_nodes` re-encodes the full diagram of every root on each
    call; a long-lived channel shipping closely related diagrams (the
    per-iteration frontiers of a fixpoint, say) re-pays that cost for nodes
    the receiver already holds.  An ``IncrementalDumper`` keeps the node
    index *across* calls: each :meth:`dump` payload carries only the nodes
    not shipped on an earlier call, referencing the rest by their previously
    assigned table indices, and a matching :class:`IncrementalLoader` on the
    receiving side grows the mirror table.  Payloads are therefore deltas —
    they only decode through the loader fed every earlier payload in order.

    Identity is tracked by ``BDDNode.identifier``, which the manager never
    reuses, and dynamic reordering preserves the *function* of every live
    node it touches — so an index entry keeps denoting the function it was
    shipped as, across reorders and garbage collections alike.  The one
    contract: only dump roots that are live in ``manager`` (reachable from
    protected roots or freshly computed), as all engine code does.
    """

    def __init__(self, manager: "BDDManager") -> None:
        self.manager = manager
        self._index: dict[int, int] = {manager.false.identifier: 0, manager.true.identifier: 1}
        self._next = 2

    def dump(self, roots: Sequence["BDDNode"]) -> dict:
        """A delta payload for ``roots``: new nodes only, old ones by index."""
        index = self._index
        nodes: list[list] = []
        for root in roots:
            if root.identifier in index:
                continue
            stack: list[tuple[BDDNode, bool]] = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if node.identifier in index:
                    continue
                if expanded:
                    nodes.append(
                        [node.variable, index[node.low.identifier], index[node.high.identifier]]
                    )
                    index[node.identifier] = self._next
                    self._next += 1
                else:
                    stack.append((node, True))
                    stack.append((node.high, False))
                    stack.append((node.low, False))
        return {
            "format": DUMP_FORMAT,
            "delta": True,
            "nodes": nodes,
            "roots": [index[root.identifier] for root in roots],
        }


class IncrementalLoader:
    """The receiving half of :class:`IncrementalDumper`: a growing node table.

    Feed it every payload of one dumper **in dump order**; each load appends
    the payload's new nodes (rebuilt bottom-up through ``ite``, so the local
    variable order may differ from the dumper's) and resolves the roots
    against the accumulated table.  The table entries must stay valid BDDs of
    this manager between loads — intended for managers that never
    garbage-collect (no dynamic reordering), e.g. the short-lived worker
    managers of :mod:`repro.verification.parallel`.
    """

    def __init__(self, manager: "BDDManager") -> None:
        self.manager = manager
        self._table: list[BDDNode] = [manager.false, manager.true]

    def load(self, payload: Mapping) -> list["BDDNode"]:
        """Append one delta payload and return its root nodes."""
        if not isinstance(payload, Mapping) or payload.get("format") != DUMP_FORMAT:
            raise ValueError(
                f"unsupported BDD dump payload (format {payload.get('format')!r})"
                if isinstance(payload, Mapping)
                else "BDD dump payload is not a mapping"
            )
        if not payload.get("delta"):
            raise ValueError("IncrementalLoader needs delta payloads (IncrementalDumper.dump)")
        table = self._table
        for entry in payload["nodes"]:
            variable, low, high = entry
            if not isinstance(variable, str) or not (0 <= low < len(table)) or not (0 <= high < len(table)):
                raise ValueError(f"malformed BDD dump entry {entry!r}")
            table.append(self.manager.ite(self.manager.var(variable), table[high], table[low]))
        roots = payload["roots"]
        if any(not isinstance(index, int) or not (0 <= index < len(table)) for index in roots):
            raise ValueError("BDD dump root index out of range")
        return [table[index] for index in roots]


class BDDNode:
    """A hash-consed BDD node (internal: use :class:`BDDManager`).

    ``refcount`` is only meaningful while a reorder is in flight: it counts
    live in-table parents plus root references, letting level exchanges
    delete dead nodes eagerly instead of accumulating garbage.
    """

    __slots__ = ("variable", "low", "high", "identifier", "refcount")

    def __init__(self, variable: Optional[str], low: Optional["BDDNode"], high: Optional["BDDNode"], identifier: int):
        self.variable = variable
        self.low = low
        self.high = high
        self.identifier = identifier
        self.refcount = 0

    @property
    def is_terminal(self) -> bool:
        return self.variable is None

    def __repr__(self) -> str:
        if self.is_terminal:
            return f"BDD({'1' if self.identifier == 1 else '0'})"
        return f"BDD({self.variable}, id={self.identifier})"


class BDDManager:
    """Factory and algebra of ROBDDs over a growable, ordered variable set.

    Instantiating ``BDDManager(...)`` yields one of two cores (see the
    module docstring): ``core="array"`` (default, overridable through the
    ``REPRO_BDD_CORE`` environment variable) or ``core="object"`` (the
    reference oracle).  This base class holds the shared surface — variable
    bookkeeping, the generic algorithms expressed over the node handle
    protocol, and the group-aware sifting driver — while the subclasses
    provide node construction, ITE, quantification and level exchanges.
    """

    #: Overridden per core ("object" / "array"); also the ``core=`` value
    #: that selects the class through the dispatching constructor.
    core = "object"

    #: Default operation-cache budget as a multiple of the unique-table
    #: size; see ``cache_ratio`` in ``__init__``.
    _default_cache_ratio = 8.0

    def __new__(cls, *args, **kwargs):
        if cls is BDDManager:
            cls = _CORES[resolve_bdd_core(kwargs.get("core"))]
        return super().__new__(cls)

    def __init__(
        self,
        variables: Iterable[str] = (),
        *,
        core: Optional[str] = None,
        auto_reorder: bool = False,
        reorder_threshold: int = 20000,
        node_budget: Optional[int] = None,
        cache_ratio: Optional[float] = None,
    ) -> None:
        if core is not None and resolve_bdd_core(core) != self.core:
            raise ValueError(f"cannot build a {self.core!r}-core manager with core={core!r}")
        self._order: list[str] = []
        self._rank: dict[str, int] = {}
        #: Reordering state: grouped variables stay adjacent, protected nodes
        #: are the live roots sifting minimises, and the flag defers budget
        #: enforcement while exchanges are in flight.
        self._groups: dict[str, tuple[str, ...]] = {}
        self._protected: list[BDDNode] = []
        self._protected_ids: set[int] = set()
        self.auto_reorder = auto_reorder
        # Arm the first auto-reorder before a node budget can fire (a design
        # one sift would fit must reach a checkpoint while still under
        # budget); post-reorder doubling then governs re-arming as usual.
        if node_budget is not None:
            reorder_threshold = min(reorder_threshold, max(node_budget // 2, 1))
        self.reorder_threshold = reorder_threshold
        self.node_budget = node_budget
        self.reorder_count = 0
        self.peak_nodes = 0
        self._reordering = False
        #: Operation-cache policy and counters.  ``cache_ratio`` bounds the
        #: cache between reorders: the object core clears its dict caches
        #: once they outgrow ``ratio × table``, the array core sizes its
        #: lossy direct-mapped cache at ``ratio × table capacity``.
        self.cache_ratio = self._default_cache_ratio if cache_ratio is None else float(cache_ratio)
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_clears = 0
        self._stat_base_hits = 0
        self._stat_base_misses = 0
        self._setup_core()
        GLOBAL_STATS["managers"] += 1
        _MANAGERS.add(self)
        for name in variables:
            self.declare(name)

    def __del__(self):  # pragma: no cover - exercised indirectly
        # Fold this manager's cache counters into the process accumulators
        # so global_stats() keeps counting after the manager is collected.
        try:
            GLOBAL_STATS["cache_hits"] += self.cache_hits - self._stat_base_hits
            GLOBAL_STATS["cache_misses"] += self.cache_misses - self._stat_base_misses
        except Exception:
            pass

    def _setup_core(self) -> None:
        """Core-specific state (tables, terminals); called by ``__init__``."""
        raise NotImplementedError

    # -- variables ---------------------------------------------------------------

    def declare(self, name: str) -> None:
        """Declare a variable (appended at the end of the ordering)."""
        if name not in self._rank:
            self._rank[name] = len(self._order)
            self._order.append(name)
            self._declared(name)

    def _declared(self, name: str) -> None:
        """Core hook: ``name`` was appended at the last ordering position."""

    @property
    def variables(self) -> tuple[str, ...]:
        """Variables in ordering position."""
        return tuple(self._order)

    def group_variables(self, names: Sequence[str]) -> None:
        """Pin ``names`` together as one reordering group.

        The variables must already sit contiguously in the current order (the
        symbolic engines declare a state bit and its primed copy back to
        back); sifting then moves the whole block as a unit, so prime/unprime
        pairs stay adjacent — the property that keeps renamed relation BDDs
        small — across every reorder.
        """
        group = tuple(names)
        if len(group) < 2:
            return
        for name in group:
            self.declare(name)
        ranks = [self._rank[name] for name in group]
        if ranks != list(range(ranks[0], ranks[0] + len(group))):
            raise ValueError(f"group {group} is not contiguous in the current order")
        for name in group:
            existing = self._groups.get(name)
            if existing is not None and existing != group:
                raise ValueError(f"variable {name!r} already belongs to group {existing}")
        for name in group:
            self._groups[name] = group

    def protect(self, node: BDDNode) -> BDDNode:
        """Register ``node`` as a live root of the reordering metric.

        Protection never affects correctness — every node stays valid across
        reorders whether protected or not (exchanges preserve node identity
        and function).  It only tells sifting which diagrams' total size to
        minimise: the engines protect their durable artifacts (transition
        clusters, reached sets, frontier rings) and scratch nodes stay out of
        the metric.  Returns ``node`` for chaining.
        """
        if not node.is_terminal and node.identifier not in self._protected_ids:
            self._protected_ids.add(node.identifier)
            self._protected.append(node)
        return node

    # -- generic node helpers -----------------------------------------------------

    def _top_variable(self, *nodes: BDDNode) -> str:
        best: Optional[str] = None
        best_rank = len(self._order)
        for node in nodes:
            if node.is_terminal:
                continue
            rank = self._rank[node.variable]
            if rank < best_rank:
                best_rank = rank
                best = node.variable
        assert best is not None
        return best

    def _cofactors(self, node: BDDNode, variable: str) -> tuple[BDDNode, BDDNode]:
        if node.is_terminal or node.variable != variable:
            return node, node
        return node.low, node.high

    # -- boolean connectives ------------------------------------------------------------

    def conj(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Conjunction ``left ∧ right``."""
        return self.ite(left, right, self.false)

    def disj(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Disjunction ``left ∨ right``."""
        return self.ite(left, self.true, right)

    def neg(self, node: BDDNode) -> BDDNode:
        """Negation ``¬node``."""
        return self.ite(node, self.false, self.true)

    def diff(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Difference ``left ∧ ¬right``."""
        return self.conj(left, self.neg(right))

    def xor(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Exclusive or."""
        return self.ite(left, self.neg(right), right)

    def implies(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Implication ``left ⇒ right``."""
        return self.ite(left, right, self.true)

    def conj_all(self, nodes: Iterable[BDDNode]) -> BDDNode:
        """Conjunction of a collection (true when empty)."""
        result = self.true
        for node in nodes:
            result = self.conj(result, node)
        return result

    def disj_all(self, nodes: Iterable[BDDNode]) -> BDDNode:
        """Disjunction of a collection (false when empty)."""
        result = self.false
        for node in nodes:
            result = self.disj(result, node)
        return result

    def cube(self, assignment: Mapping[str, bool]) -> BDDNode:
        """The conjunction of literals described by ``assignment``."""
        result = self.true
        for name, value in assignment.items():
            result = self.conj(result, self.var(name) if value else self.nvar(name))
        return result

    # -- rename validation (shared by both cores) ---------------------------------------

    def _rename_relevant(self, node: BDDNode, mapping: Mapping[str, str]) -> dict[str, str]:
        """The support-restricted, validated renaming (targets declared)."""
        support = self.support(node)
        relevant = {old: new for old, new in mapping.items() if old in support}
        clashes = (set(relevant.values()) & support) - set(relevant)
        if clashes:
            raise ValueError(f"rename targets {sorted(clashes)} collide with the support")
        if len(set(relevant.values())) != len(relevant):
            duplicated = sorted({new for new in relevant.values() if list(relevant.values()).count(new) > 1})
            raise ValueError(f"rename is not injective on the support: targets {duplicated} are duplicated")
        for new in relevant.values():
            self.declare(new)
        return relevant

    def preimage(
        self,
        relation: BDDNode,
        states: BDDNode,
        prime_map: Mapping[str, str],
        quantified: Iterable[str],
    ) -> BDDNode:
        """Predecessors of ``states`` under ``relation`` (backward image).

        The backward counterpart of the image relational product: ``states``
        (over unprimed state variables) is renamed onto the primed variables
        via ``prime_map``, conjoined with the transition relation, and the
        ``quantified`` variables (signal and primed state bits) are
        existentially eliminated in the same pass.  This is the primitive the
        counterexample-trace extraction of the symbolic engines walks the
        per-iteration frontier rings back through.
        """
        return self.and_exists(relation, self.rename(states, prime_map), quantified)

    # -- dynamic variable reordering -----------------------------------------------------

    def maybe_reorder(self, roots: Iterable[BDDNode] = ()) -> bool:
        """Reorder if the unique table outgrew ``reorder_threshold``.

        This is the *checkpoint* the engines call at points where they know
        their complete live set — between fixpoint iterations, between
        relation conjuncts — passing the still-unprotected working nodes as
        ``roots`` (combined with every :meth:`protect`-ed node).  Reordering
        garbage-collects down to those roots first (see :meth:`reorder`), so
        a checkpoint is only safe when everything the caller will touch again
        is protected or listed.  Returns True when a reorder actually ran.
        """
        if not self.auto_reorder or self._reordering:
            return False
        population = self._population()
        # A checkpoint near the node budget always gets to collect and
        # re-sift, whatever the threshold has doubled to — dying on budget
        # without having tried a reorder would defeat the budget's purpose.
        near_budget = (
            self.node_budget is not None and population >= (3 * self.node_budget) // 4
        )
        if population < self.reorder_threshold and not near_budget:
            return False
        self.reorder(roots=[*self._protected, *roots])
        # Classic threshold doubling: don't re-sift until the table has
        # genuinely outgrown what this pass settled on.
        self.reorder_threshold = max(self.reorder_threshold, 2 * self._population())
        return True

    def reorder(
        self, roots: Optional[Iterable[BDDNode]] = None, max_growth: float = 1.4
    ) -> int:
        """One pass of group-aware Rudell sifting over the live diagrams.

        The unique table is first garbage-collected down to the nodes
        reachable from ``roots`` (default: the :meth:`protect`-ed set) —
        **nodes outside those diagrams are dropped and must not be passed
        back into the manager afterwards**.  Then every group (prime/unprime
        pairs declared via :meth:`group_variables`; other variables are
        singletons) is moved through the order by adjacent level exchanges —
        largest population first — and parked where the total live node
        count is smallest; a sweep direction is abandoned once the count
        exceeds ``max_growth`` times the best seen.  Live nodes are mutated
        in place — same handle, same identifier, same function — so
        references *into the root diagrams* and name-based renaming maps all
        survive.  Returns the live node count after the pass.
        """
        root_nodes = [
            node
            for node in (list(roots) if roots is not None else self._protected)
            if not node.is_terminal
        ]
        if not root_nodes or len(self._order) < 2:
            return 0
        self._reordering = True
        try:
            self._begin_reorder(root_nodes)
            groups = self._grouped_order()
            counts = self._live_counts(root_nodes)
            population = {group: sum(counts[name] for name in group) for group in groups}
            for group in sorted(groups, key=lambda g: population[g], reverse=True):
                self._sift_group(groups, group, max_growth)
            total = self._population()
            self._end_reorder(root_nodes)
        finally:
            self._reordering = False
        self.reorder_count += 1
        GLOBAL_STATS["reorders"] += 1
        return total

    def _grouped_order(self) -> list[tuple[str, ...]]:
        """The current order partitioned into reordering units (groups)."""
        groups: list[tuple[str, ...]] = []
        index = 0
        while index < len(self._order):
            group = self._groups.get(self._order[index])
            if group is None:
                groups.append((self._order[index],))
                index += 1
                continue
            if tuple(self._order[index : index + len(group)]) != group:
                raise RuntimeError(f"group {group} lost its adjacency")
            groups.append(group)
            index += len(group)
        return groups

    def _swap_groups(self, groups: list[tuple[str, ...]], index: int) -> None:
        """Exchange the adjacent groups at ``index`` and ``index + 1``."""
        above, below = groups[index], groups[index + 1]
        base = self._rank[above[0]]
        span = len(above)
        for offset in range(len(below)):
            for position in range(base + span + offset - 1, base + offset - 1, -1):
                self._swap_adjacent(position)
        groups[index], groups[index + 1] = below, above

    def _sift_group(
        self,
        groups: list[tuple[str, ...]],
        group: tuple[str, ...],
        max_growth: float,
    ) -> None:
        """Sift one group to the position minimising the live table size."""
        position = groups.index(group)
        best_total, best_index = self._population(), position
        while position < len(groups) - 1:  # sweep down
            self._swap_groups(groups, position)
            position += 1
            total = self._population()
            if total < best_total:
                best_total, best_index = total, position
            if total > max_growth * best_total:
                break
        while position > 0:  # sweep up, through the start position
            self._swap_groups(groups, position - 1)
            position -= 1
            total = self._population()
            if total < best_total:
                best_total, best_index = total, position
            if total > max_growth * best_total and position <= best_index:
                break
        while position < best_index:  # park at the best position seen
            self._swap_groups(groups, position)
            position += 1
        while position > best_index:
            self._swap_groups(groups, position - 1)
            position -= 1

    def statistics(self) -> dict:
        """Counters of the manager's life so far (sizes, peaks, caches)."""
        return {
            "core": self.core,
            "variables": len(self._order),
            "table_nodes": self._population(),
            "live_nodes": sum(self._live_counts(self._protected).values()),
            "peak_nodes": self.peak_nodes,
            "reorders": self.reorder_count,
            "nodes_created": self._nodes_created(),
            "cache_entries": self._cache_entries(),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_clears": self.cache_clears,
        }

    # -- bit-vector circuits ------------------------------------------------------------
    #
    # Unsigned bit-vectors are plain lists of BDD nodes, least significant bit
    # first; a vector of width 0 denotes the constant 0.  The finite-integer
    # symbolic engine (:mod:`repro.verification.symbolic_int`) compiles SIGNAL
    # arithmetic onto these circuits: addition is a ripple-carry adder,
    # comparisons are the classical LSB-to-MSB comparator chain, and selection
    # is a bitwise multiplexer.  Widths are the caller's business — every
    # operation below is exact over the width it is asked to produce.

    def bv_const(self, value: int, width: int) -> list[BDDNode]:
        """The constant vector of ``value`` over ``width`` bits (LSB first)."""
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"constant {value} is not representable over {width} unsigned bits")
        return [self.true if (value >> index) & 1 else self.false for index in range(width)]

    def bv_not(self, bits: Sequence[BDDNode]) -> list[BDDNode]:
        """Bitwise complement (one's complement over the vector's own width)."""
        return [self.neg(bit) for bit in bits]

    def bv_extend(self, bits: Sequence[BDDNode], width: int) -> list[BDDNode]:
        """Zero-extend a vector to ``width`` bits."""
        if width < len(bits):
            raise ValueError(f"cannot shrink a {len(bits)}-bit vector to {width} bits")
        return list(bits) + [self.false] * (width - len(bits))

    def bv_add(self, left: Sequence[BDDNode], right: Sequence[BDDNode], width: Optional[int] = None) -> list[BDDNode]:
        """Ripple-carry addition, exact by default, truncated mod 2^width if narrower.

        The default width ``max(len(left), len(right)) + 1`` always holds the
        exact sum; passing a smaller width drops the high carries (the wrap
        the modulo circuit exploits deliberately).
        """
        if width is None:
            width = max(len(left), len(right), 1) + 1 if (left or right) else 0
        a = self.bv_extend(left, max(width, len(left)))
        b = self.bv_extend(right, max(width, len(right)))
        result: list[BDDNode] = []
        carry = self.false
        for index in range(width):
            x, y = a[index], b[index]
            partial = self.xor(x, y)
            result.append(self.xor(partial, carry))
            # carry-out = majority(x, y, carry) = (x ∧ y) ∨ (carry ∧ (x ⊕ y))
            carry = self.disj(self.conj(x, y), self.conj(carry, partial))
        return result

    def bv_eq(self, left: Sequence[BDDNode], right: Sequence[BDDNode]) -> BDDNode:
        """Equality of two unsigned vectors (the shorter is zero-extended)."""
        width = max(len(left), len(right))
        a = self.bv_extend(left, width)
        b = self.bv_extend(right, width)
        return self.conj_all(self.neg(self.xor(x, y)) for x, y in zip(a, b))

    def bv_lt(self, left: Sequence[BDDNode], right: Sequence[BDDNode]) -> BDDNode:
        """Unsigned strict comparison ``left < right`` (comparator chain)."""
        width = max(len(left), len(right))
        a = self.bv_extend(left, width)
        b = self.bv_extend(right, width)
        less = self.false
        for x, y in zip(a, b):  # LSB to MSB: the MSB verdict dominates
            less = self.ite(self.xor(x, y), y, less)
        return less

    def bv_le(self, left: Sequence[BDDNode], right: Sequence[BDDNode]) -> BDDNode:
        """Unsigned comparison ``left <= right``."""
        return self.neg(self.bv_lt(right, left))

    def bv_mux(self, condition: BDDNode, then: Sequence[BDDNode], otherwise: Sequence[BDDNode]) -> list[BDDNode]:
        """Bitwise multiplexer: ``then`` when ``condition`` holds, else ``otherwise``."""
        width = max(len(then), len(otherwise))
        a = self.bv_extend(then, width)
        b = self.bv_extend(otherwise, width)
        return [self.ite(condition, x, y) for x, y in zip(a, b)]

    def bv_value(self, bits: Sequence[BDDNode], assignment: Mapping[str, bool]) -> int:
        """Evaluate a vector of (variable or constant) bits under an assignment."""
        value = 0
        for index, bit in enumerate(bits):
            if self.evaluate(bit, dict(assignment)):
                value |= 1 << index
        return value

    # -- queries ----------------------------------------------------------------------------

    def equivalent(self, left: BDDNode, right: BDDNode) -> bool:
        """Canonical-form equality of two functions."""
        return left is right

    def entails(self, left: BDDNode, right: BDDNode) -> bool:
        """``left ⇒ right`` is a tautology."""
        return self.diff(left, right) is self.false

    def is_false(self, node: BDDNode) -> bool:
        """The constant-false function."""
        return node is self.false

    def is_true(self, node: BDDNode) -> bool:
        """The constant-true function."""
        return node is self.true

    def restrict(self, node: BDDNode, assignment: dict[str, bool]) -> BDDNode:
        """Cofactor ``node`` by a partial assignment."""
        if node.is_terminal:
            return node
        low = self.restrict(node.low, assignment)
        high = self.restrict(node.high, assignment)
        if node.variable in assignment:
            return high if assignment[node.variable] else low
        return self._node(node.variable, low, high)

    def support(self, node: BDDNode) -> set[str]:
        """Variables the function actually depends on."""
        seen: set[int] = set()
        variables: set[str] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_terminal or current.identifier in seen:
                continue
            seen.add(current.identifier)
            variables.add(current.variable)
            stack.append(current.low)
            stack.append(current.high)
        return variables

    def _counting_order(self, node: BDDNode, variables: Optional[list[str]]) -> list[str]:
        """Normalise a variable list to diagram order (undeclared names are
        declared): the positional cofactor walks below would silently skip a
        support variable listed out of order or omitted, losing models."""
        if variables is None:
            return sorted(self.support(node), key=lambda v: self._rank[v])
        names = set(variables)  # duplicates would double-count via identity cofactors
        for name in names:
            self.declare(name)
        missing = self.support(node) - names
        if missing:
            raise ValueError(f"variable list omits support variables {sorted(missing)}")
        return sorted(names, key=lambda v: self._rank[v])

    def satisfying_assignments(self, node: BDDNode, variables: Optional[list[str]] = None) -> Iterator[dict[str, bool]]:
        """Enumerate total satisfying assignments over ``variables``."""
        names = self._counting_order(node, variables)

        def recurse(index: int, current: BDDNode, assignment: dict[str, bool]) -> Iterator[dict[str, bool]]:
            if index == len(names):
                if current is self.true:
                    yield dict(assignment)
                return
            variable = names[index]
            low, high = self._cofactors(current, variable)
            for value, branch in ((False, low), (True, high)):
                if branch is self.false:
                    continue
                assignment[variable] = value
                yield from recurse(index + 1, branch, assignment)
                del assignment[variable]

        yield from recurse(0, node, {})

    def count_satisfying(self, node: BDDNode, variables: Optional[list[str]] = None) -> int:
        """Number of satisfying assignments over ``variables``.

        Computed by dynamic programming over the diagram (not by enumeration),
        so counting the 2^n states of a large symbolic reachable set is cheap.
        """
        names = self._counting_order(node, variables)
        memo: dict[tuple[int, int], int] = {}

        def count(current: BDDNode, index: int) -> int:
            if index == len(names):
                return 1 if current is self.true else 0
            key = (current.identifier, index)
            cached = memo.get(key)
            if cached is None:
                low, high = self._cofactors(current, names[index])
                cached = count(low, index + 1) + count(high, index + 1)
                memo[key] = cached
            return cached

        return count(node, 0)

    def evaluate(self, node: BDDNode, assignment: dict[str, bool]) -> bool:
        """Evaluate the function under a total assignment of its support."""
        current = node
        while not current.is_terminal:
            try:
                value = assignment[current.variable]
            except KeyError:
                raise KeyError(f"assignment misses variable {current.variable!r}") from None
            current = current.high if value else current.low
        return current is self.true

    def to_expression(self, node: BDDNode) -> str:
        """A readable sum-of-cubes rendering of the function."""
        if node is self.true:
            return "true"
        if node is self.false:
            return "false"
        cubes = []
        for assignment in self.satisfying_assignments(node):
            literals = [name if value else f"¬{name}" for name, value in sorted(assignment.items())]
            cubes.append(" ∧ ".join(literals) if literals else "true")
        return " ∨ ".join(cubes) if cubes else "false"

    def size(self, node: BDDNode) -> int:
        """Number of distinct decision nodes of the diagram."""
        seen: set[int] = set()
        stack = [node]
        count = 0
        while stack:
            current = stack.pop()
            if current.is_terminal or current.identifier in seen:
                continue
            seen.add(current.identifier)
            count += 1
            stack.append(current.low)
            stack.append(current.high)
        return count


class ObjectBDDManager(BDDManager):
    """The reference core: one Python object per node, dict-based tables.

    Slower than the array core but structurally transparent — every node is
    a :class:`BDDNode` with real attributes — which is what makes it the
    differential oracle the array core is pinned against in
    ``tests/test_bdd_core.py`` and the CI ``bdd-core`` matrix leg.
    """

    core = "object"
    _default_cache_ratio = 8.0

    #: Never trim the dict caches below this many entries, whatever the
    #: ratio says — tiny tables would otherwise thrash the caches on every
    #: recursion.
    _CACHE_FLOOR = 1 << 15

    def _setup_core(self) -> None:
        self.false = BDDNode(None, None, None, 0)
        self.true = BDDNode(None, None, None, 1)
        self._next_id = 2
        self._unique: dict[tuple[str, int, int], BDDNode] = {}
        self._ite_cache: dict[tuple[int, int, int], BDDNode] = {}
        self._quant_cache: dict[tuple[int, int, bool], BDDNode] = {}
        self._relprod_cache: dict[tuple[int, int, int], BDDNode] = {}
        self._varsets: dict[frozenset, int] = {}
        #: Per-variable node index, so a level exchange touches one level's
        #: nodes instead of scanning the whole unique table.
        self._var_nodes: dict[str, list[BDDNode]] = {}

    # -- core accounting -----------------------------------------------------------

    def _population(self) -> int:
        return len(self._unique)

    def _nodes_created(self) -> int:
        return self._next_id - 2

    def _cache_entries(self) -> int:
        return len(self._ite_cache) + len(self._quant_cache) + len(self._relprod_cache)

    def _note_cache_insert(self) -> None:
        """Clear the dict caches once they outgrow ``cache_ratio × table``."""
        limit = max(self._CACHE_FLOOR, int(self.cache_ratio * len(self._unique)))
        if self._cache_entries() > limit:
            self._ite_cache.clear()
            self._quant_cache.clear()
            self._relprod_cache.clear()
            self.cache_clears += 1

    # -- variables -----------------------------------------------------------------

    def var(self, name: str) -> BDDNode:
        """The BDD of the literal ``name``."""
        self.declare(name)
        return self._node(name, self.false, self.true)

    def nvar(self, name: str) -> BDDNode:
        """The BDD of the negated literal ``¬name``."""
        self.declare(name)
        return self._node(name, self.true, self.false)

    # -- node construction ---------------------------------------------------------

    def _node(self, variable: str, low: BDDNode, high: BDDNode) -> BDDNode:
        if low is high:
            return low
        node = self._unique.get((variable, low.identifier, high.identifier))
        if node is None:
            if (
                self.node_budget is not None
                and not self._reordering
                and len(self._unique) >= self.node_budget
            ):
                raise NodeBudgetExceeded(
                    f"unique table would outgrow the node budget of {self.node_budget}"
                )
            node = self._new_node(variable, low, high)
        return node

    def _new_node(self, variable: str, low: BDDNode, high: BDDNode) -> BDDNode:
        """Create and register a fresh node (table, level index, peak stats)."""
        node = BDDNode(variable, low, high, self._next_id)
        self._next_id += 1
        self._unique[(variable, low.identifier, high.identifier)] = node
        self._var_nodes.setdefault(variable, []).append(node)
        population = len(self._unique)
        if population > self.peak_nodes:
            self.peak_nodes = population
            if population > GLOBAL_STATS["peak_nodes"]:
                GLOBAL_STATS["peak_nodes"] = population
        return node

    def ite(self, condition: BDDNode, then: BDDNode, otherwise: BDDNode) -> BDDNode:
        """The if-then-else combinator, core of every boolean connective."""
        if condition is self.true:
            return then
        if condition is self.false:
            return otherwise
        if then is otherwise:
            return then
        if then is self.true and otherwise is self.false:
            return condition
        key = (condition.identifier, then.identifier, otherwise.identifier)
        cached = self._ite_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        variable = self._top_variable(condition, then, otherwise)
        c_low, c_high = self._cofactors(condition, variable)
        t_low, t_high = self._cofactors(then, variable)
        o_low, o_high = self._cofactors(otherwise, variable)
        result = self._node(
            variable,
            self.ite(c_low, t_low, o_low),
            self.ite(c_high, t_high, o_high),
        )
        self._ite_cache[key] = result
        self._note_cache_insert()
        return result

    # -- quantification and relational operations ---------------------------------------

    def _varset_id(self, variables: Iterable[str]) -> tuple[frozenset, int]:
        names = variables if isinstance(variables, frozenset) else frozenset(variables)
        identifier = self._varsets.get(names)
        if identifier is None:
            identifier = len(self._varsets)
            self._varsets[names] = identifier
        return names, identifier

    def exists(self, node: BDDNode, variables: Iterable[str]) -> BDDNode:
        """Existential quantification ``∃ variables . node``."""
        names, set_id = self._varset_id(variables)
        return self._quantify(node, names, set_id, existential=True)

    def forall(self, node: BDDNode, variables: Iterable[str]) -> BDDNode:
        """Universal quantification ``∀ variables . node``."""
        names, set_id = self._varset_id(variables)
        return self._quantify(node, names, set_id, existential=False)

    def _quantify(self, node: BDDNode, names: frozenset, set_id: int, existential: bool) -> BDDNode:
        if node.is_terminal:
            return node
        key = (node.identifier, set_id, existential)
        cached = self._quant_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        low = self._quantify(node.low, names, set_id, existential)
        high = self._quantify(node.high, names, set_id, existential)
        if node.variable in names:
            result = self.disj(low, high) if existential else self.conj(low, high)
        else:
            result = self._node(node.variable, low, high)
        self._quant_cache[key] = result
        self._note_cache_insert()
        return result

    def rename(self, node: BDDNode, mapping: Mapping[str, str]) -> BDDNode:
        """Simultaneous substitution of variables by variables.

        The substitution is functional composition, so it is correct even when
        the renaming does not preserve the variable ordering (the result is
        rebuilt with ``ite``); renaming onto a variable in the support of
        ``node`` that is not itself renamed away is rejected.
        """
        relevant = self._rename_relevant(node, mapping)
        memo: dict[int, BDDNode] = {}

        def walk(current: BDDNode) -> BDDNode:
            if current.is_terminal:
                return current
            done = memo.get(current.identifier)
            if done is not None:
                return done
            low = walk(current.low)
            high = walk(current.high)
            target = relevant.get(current.variable, current.variable)
            result = self.ite(self.var(target), high, low)
            memo[current.identifier] = result
            return result

        return walk(node)

    def and_exists(self, left: BDDNode, right: BDDNode, variables: Iterable[str]) -> BDDNode:
        """The relational product ``∃ variables . left ∧ right`` in one pass.

        Quantifying while conjoining avoids materialising the (often much
        larger) conjunction — the classical optimisation of symbolic image
        computation.
        """
        names, set_id = self._varset_id(variables)
        return self._and_exists(left, right, names, set_id)

    def _and_exists(self, left: BDDNode, right: BDDNode, names: frozenset, set_id: int) -> BDDNode:
        if left is self.false or right is self.false:
            return self.false
        if left is self.true and right is self.true:
            return self.true
        if left is self.true:
            return self._quantify(right, names, set_id, existential=True)
        if right is self.true:
            return self._quantify(left, names, set_id, existential=True)
        key = (min(left.identifier, right.identifier), max(left.identifier, right.identifier), set_id)
        cached = self._relprod_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        variable = self._top_variable(left, right)
        l_low, l_high = self._cofactors(left, variable)
        r_low, r_high = self._cofactors(right, variable)
        low = self._and_exists(l_low, r_low, names, set_id)
        if variable in names and low is self.true:
            result = self.true
        else:
            high = self._and_exists(l_high, r_high, names, set_id)
            if variable in names:
                result = self.disj(low, high)
            else:
                result = self._node(variable, low, high)
        self._relprod_cache[key] = result
        self._note_cache_insert()
        return result

    # -- dynamic variable reordering -----------------------------------------------------

    def _begin_reorder(self, root_nodes: Sequence[BDDNode]) -> None:
        self._collect(root_nodes)
        # Root and parent reference counts let exchanges delete dead
        # diagrams eagerly: from here on the table holds exactly the
        # live nodes, so ``len(self._unique)`` is the sifting metric.
        for node in self._unique.values():
            node.refcount = 0
        for node in self._unique.values():
            if not node.low.is_terminal:
                node.low.refcount += 1
            if not node.high.is_terminal:
                node.high.refcount += 1
        for root in root_nodes:
            root.refcount += 1

    def _end_reorder(self, root_nodes: Sequence[BDDNode]) -> None:
        self._collect(root_nodes)  # rebuild the level index, drop dead entries

    def _collect(self, roots: Sequence[BDDNode]) -> None:
        """Mark-and-sweep the unique table down to ``roots``' diagrams.

        Nodes unreachable from the roots are dropped from the table (their
        Python objects become dead weight the moment the caller lets go);
        the operation caches are cleared wholesale since they may reference
        swept nodes.  Only called inside :meth:`reorder` — the sweep is what
        keeps level exchanges proportional to the live diagrams instead of
        every node ever created.
        """
        live: dict[int, BDDNode] = {}
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node.is_terminal or node.identifier in live:
                continue
            live[node.identifier] = node
            stack.append(node.low)
            stack.append(node.high)
        self._unique = {
            (node.variable, node.low.identifier, node.high.identifier): node
            for node in live.values()
        }
        self._var_nodes = {}
        for node in live.values():
            self._var_nodes.setdefault(node.variable, []).append(node)
        self._ite_cache.clear()
        self._quant_cache.clear()
        self._relprod_cache.clear()
        self.cache_clears += 1

    def _swap_adjacent(self, position: int) -> None:
        """Exchange the variables at ``position`` and ``position + 1`` in place.

        The classical level exchange: every live node labelled by the upper
        variable whose cofactors mention the lower one is rewritten *in
        place* — same object, same identifier, same boolean function — so
        references into the root diagrams, and name-based maps, stay valid.
        Nodes without a lower-variable cofactor simply travel with their
        label's new rank.  The exchange preserves canonicity because a
        rewritten node can collide neither with a pre-existing lower-variable
        node (those are ordered below both levels, hence free of the upper
        variable, while a rewrite keeps at least one upper-variable cofactor)
        nor with another rewrite (distinct functions stay distinct).

        Reference counts (established by :meth:`reorder` after its garbage
        collection) are maintained: rewired-away children are released and
        dead diagrams deleted eagerly, so ``len(self._unique)`` *is* the live
        node count throughout sifting — the metric positions are judged by.
        """
        upper = self._order[position]
        lower = self._order[position + 1]
        affected: list[BDDNode] = []
        remaining: list[BDDNode] = []
        for node in self._var_nodes.get(upper, ()):
            if node.refcount <= 0 or node.variable != upper:
                continue  # died, or migrated in an earlier exchange
            if node.low.variable == lower or node.high.variable == lower:
                affected.append(node)
            else:
                remaining.append(node)
        # Reset the level index before rewriting: freshly created upper-level
        # children re-register themselves through ``_claim``.
        self._var_nodes[upper] = remaining
        lower_level = self._var_nodes.setdefault(lower, [])
        for node in affected:
            del self._unique[(upper, node.low.identifier, node.high.identifier)]
        self._order[position], self._order[position + 1] = lower, upper
        self._rank[upper], self._rank[lower] = self._rank[lower], self._rank[upper]
        for node in affected:
            old_low, old_high = node.low, node.high
            low_low, low_high = self._cofactors(old_low, lower)
            high_low, high_high = self._cofactors(old_high, lower)
            new_low = self._claim(upper, low_low, high_low)
            new_high = self._claim(upper, low_high, high_high)
            node.variable = lower
            node.low = new_low
            node.high = new_high
            new_key = (lower, new_low.identifier, new_high.identifier)
            assert new_key not in self._unique, "level exchange produced a duplicate"
            self._unique[new_key] = node
            lower_level.append(node)
            self._release(old_low)
            self._release(old_high)

    def _claim(self, variable: str, low: BDDNode, high: BDDNode) -> BDDNode:
        """Reduced node construction during a reorder, claiming one reference."""
        if low is high:
            if not low.is_terminal:
                low.refcount += 1
            return low
        node = self._unique.get((variable, low.identifier, high.identifier))
        if node is not None:
            node.refcount += 1
            return node
        node = self._new_node(variable, low, high)
        node.refcount = 1
        if not low.is_terminal:
            low.refcount += 1
        if not high.is_terminal:
            high.refcount += 1
        return node

    def _release(self, node: BDDNode) -> None:
        """Drop one reference; delete the node (and cascade) when none remain."""
        if node.is_terminal:
            return
        node.refcount -= 1
        if node.refcount > 0:
            return
        del self._unique[(node.variable, node.low.identifier, node.high.identifier)]
        self._release(node.low)
        self._release(node.high)

    def _live_counts(self, roots: Sequence[BDDNode]) -> dict[str, int]:
        """Per-variable node counts of the diagrams reachable from ``roots``."""
        counts = {name: 0 for name in self._order}
        seen: set[int] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current.is_terminal or current.identifier in seen:
                continue
            seen.add(current.identifier)
            counts[current.variable] += 1
            stack.append(current.low)
            stack.append(current.high)
        return counts


_CORES["object"] = ObjectBDDManager

# The array core lives in its own module (it shares nothing structural with
# the object core beyond the base class); importing it registers it under
# _CORES["array"].  Imported last so the base machinery above is defined.
from .bdd_array import ArrayBDDManager, ArrayBDDNode  # noqa: E402

_CORES["array"] = ArrayBDDManager
