"""A small reduced ordered binary decision diagram (ROBDD) package.

The SIGNAL compiler's clock calculus manipulates boolean formulas over
presence and value conditions; canonicalising them is what lets the compiler
decide clock equivalence, inclusion and emptiness.  This module provides the
minimal ROBDD machinery needed for that: a manager with hash-consed nodes,
the ``ite`` combinator, the usual boolean connectives, restriction,
satisfiability and model enumeration.

The same engine is reused by the verification layer to represent state
predicates symbolically.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class BDDNode:
    """A hash-consed BDD node (internal: use :class:`BDDManager`)."""

    __slots__ = ("variable", "low", "high", "identifier")

    def __init__(self, variable: Optional[str], low: Optional["BDDNode"], high: Optional["BDDNode"], identifier: int):
        self.variable = variable
        self.low = low
        self.high = high
        self.identifier = identifier

    @property
    def is_terminal(self) -> bool:
        return self.variable is None

    def __repr__(self) -> str:
        if self.is_terminal:
            return f"BDD({'1' if self.identifier == 1 else '0'})"
        return f"BDD({self.variable}, id={self.identifier})"


class BDDManager:
    """Factory and algebra of ROBDDs over a growable, ordered variable set."""

    def __init__(self, variables: Iterable[str] = ()) -> None:
        self._order: list[str] = []
        self._rank: dict[str, int] = {}
        self.false = BDDNode(None, None, None, 0)
        self.true = BDDNode(None, None, None, 1)
        self._next_id = 2
        self._unique: dict[tuple[str, int, int], BDDNode] = {}
        self._ite_cache: dict[tuple[int, int, int], BDDNode] = {}
        for name in variables:
            self.declare(name)

    # -- variables ---------------------------------------------------------------

    def declare(self, name: str) -> None:
        """Declare a variable (appended at the end of the ordering)."""
        if name not in self._rank:
            self._rank[name] = len(self._order)
            self._order.append(name)

    @property
    def variables(self) -> tuple[str, ...]:
        """Variables in ordering position."""
        return tuple(self._order)

    def var(self, name: str) -> BDDNode:
        """The BDD of the literal ``name``."""
        self.declare(name)
        return self._node(name, self.false, self.true)

    def nvar(self, name: str) -> BDDNode:
        """The BDD of the negated literal ``¬name``."""
        self.declare(name)
        return self._node(name, self.true, self.false)

    # -- node construction ---------------------------------------------------------

    def _node(self, variable: str, low: BDDNode, high: BDDNode) -> BDDNode:
        if low is high:
            return low
        key = (variable, low.identifier, high.identifier)
        node = self._unique.get(key)
        if node is None:
            node = BDDNode(variable, low, high, self._next_id)
            self._next_id += 1
            self._unique[key] = node
        return node

    def _top_variable(self, *nodes: BDDNode) -> str:
        best: Optional[str] = None
        best_rank = len(self._order)
        for node in nodes:
            if node.is_terminal:
                continue
            rank = self._rank[node.variable]
            if rank < best_rank:
                best_rank = rank
                best = node.variable
        assert best is not None
        return best

    def _cofactors(self, node: BDDNode, variable: str) -> tuple[BDDNode, BDDNode]:
        if node.is_terminal or node.variable != variable:
            return node, node
        return node.low, node.high

    def ite(self, condition: BDDNode, then: BDDNode, otherwise: BDDNode) -> BDDNode:
        """The if-then-else combinator, core of every boolean connective."""
        if condition is self.true:
            return then
        if condition is self.false:
            return otherwise
        if then is otherwise:
            return then
        if then is self.true and otherwise is self.false:
            return condition
        key = (condition.identifier, then.identifier, otherwise.identifier)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        variable = self._top_variable(condition, then, otherwise)
        c_low, c_high = self._cofactors(condition, variable)
        t_low, t_high = self._cofactors(then, variable)
        o_low, o_high = self._cofactors(otherwise, variable)
        result = self._node(
            variable,
            self.ite(c_low, t_low, o_low),
            self.ite(c_high, t_high, o_high),
        )
        self._ite_cache[key] = result
        return result

    # -- boolean connectives ------------------------------------------------------------

    def conj(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Conjunction ``left ∧ right``."""
        return self.ite(left, right, self.false)

    def disj(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Disjunction ``left ∨ right``."""
        return self.ite(left, self.true, right)

    def neg(self, node: BDDNode) -> BDDNode:
        """Negation ``¬node``."""
        return self.ite(node, self.false, self.true)

    def diff(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Difference ``left ∧ ¬right``."""
        return self.conj(left, self.neg(right))

    def xor(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Exclusive or."""
        return self.ite(left, self.neg(right), right)

    def implies(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Implication ``left ⇒ right``."""
        return self.ite(left, right, self.true)

    def conj_all(self, nodes: Iterable[BDDNode]) -> BDDNode:
        """Conjunction of a collection (true when empty)."""
        result = self.true
        for node in nodes:
            result = self.conj(result, node)
        return result

    def disj_all(self, nodes: Iterable[BDDNode]) -> BDDNode:
        """Disjunction of a collection (false when empty)."""
        result = self.false
        for node in nodes:
            result = self.disj(result, node)
        return result

    # -- queries ----------------------------------------------------------------------------

    def equivalent(self, left: BDDNode, right: BDDNode) -> bool:
        """Canonical-form equality of two functions."""
        return left is right

    def entails(self, left: BDDNode, right: BDDNode) -> bool:
        """``left ⇒ right`` is a tautology."""
        return self.diff(left, right) is self.false

    def is_false(self, node: BDDNode) -> bool:
        """The constant-false function."""
        return node is self.false

    def is_true(self, node: BDDNode) -> bool:
        """The constant-true function."""
        return node is self.true

    def restrict(self, node: BDDNode, assignment: dict[str, bool]) -> BDDNode:
        """Cofactor ``node`` by a partial assignment."""
        if node.is_terminal:
            return node
        low = self.restrict(node.low, assignment)
        high = self.restrict(node.high, assignment)
        if node.variable in assignment:
            return high if assignment[node.variable] else low
        return self._node(node.variable, low, high)

    def support(self, node: BDDNode) -> set[str]:
        """Variables the function actually depends on."""
        seen: set[int] = set()
        variables: set[str] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_terminal or current.identifier in seen:
                continue
            seen.add(current.identifier)
            variables.add(current.variable)
            stack.append(current.low)
            stack.append(current.high)
        return variables

    def satisfying_assignments(self, node: BDDNode, variables: Optional[list[str]] = None) -> Iterator[dict[str, bool]]:
        """Enumerate total satisfying assignments over ``variables``."""
        names = variables if variables is not None else sorted(self.support(node), key=lambda v: self._rank[v])

        def recurse(index: int, current: BDDNode, assignment: dict[str, bool]) -> Iterator[dict[str, bool]]:
            if index == len(names):
                if current is self.true:
                    yield dict(assignment)
                return
            variable = names[index]
            low, high = self._cofactors(current, variable)
            for value, branch in ((False, low), (True, high)):
                if branch is self.false:
                    continue
                assignment[variable] = value
                yield from recurse(index + 1, branch, assignment)
                del assignment[variable]

        yield from recurse(0, node, {})

    def count_satisfying(self, node: BDDNode, variables: Optional[list[str]] = None) -> int:
        """Number of satisfying assignments over ``variables``."""
        names = variables if variables is not None else sorted(self.support(node), key=lambda v: self._rank[v])
        return sum(1 for _ in self.satisfying_assignments(node, names))

    def evaluate(self, node: BDDNode, assignment: dict[str, bool]) -> bool:
        """Evaluate the function under a total assignment of its support."""
        current = node
        while not current.is_terminal:
            try:
                value = assignment[current.variable]
            except KeyError:
                raise KeyError(f"assignment misses variable {current.variable!r}") from None
            current = current.high if value else current.low
        return current is self.true

    def to_expression(self, node: BDDNode) -> str:
        """A readable sum-of-cubes rendering of the function."""
        if node is self.true:
            return "true"
        if node is self.false:
            return "false"
        cubes = []
        for assignment in self.satisfying_assignments(node):
            literals = [name if value else f"¬{name}" for name, value in sorted(assignment.items())]
            cubes.append(" ∧ ".join(literals) if literals else "true")
        return " ∨ ".join(cubes) if cubes else "false"

    def size(self, node: BDDNode) -> int:
        """Number of distinct decision nodes of the diagram."""
        seen: set[int] = set()
        stack = [node]
        count = 0
        while stack:
            current = stack.pop()
            if current.is_terminal or current.identifier in seen:
                continue
            seen.add(current.identifier)
            count += 1
            stack.append(current.low)
            stack.append(current.high)
        return count
