"""The array-based BDD core: integer edges, complement bits, one ITE.

This module implements the ``core="array"`` half of
:class:`repro.clocks.bdd.BDDManager`.  Where the object core allocates one
Python object per node and memoises each operation in its own dict, this
core lowers the whole diagram store onto flat parallel lists:

* A *node* is an index ``n`` into ``_var``/``_lo``/``_hi`` (variable id,
  low edge, high edge).  Index 0 is the only terminal.
* An *edge* is ``(n << 1) | complement``: the low bit tags logical
  negation, so edge 0 is TRUE, edge 1 is FALSE, and ``neg`` is a single
  XOR — no traversal, no allocation.  Canonical form: the **stored high
  edge of every node is regular** (complement bit clear); ``_mk``
  normalises by complementing both children and returning a complemented
  edge instead, which is what makes ``f`` and ``¬f`` share one node and
  ``ite(x, 1, 0)`` the only representation of a literal.
* The unique table is one integer hash table: the ``(var, low, high)``
  triple is packed into a single int key mapping to the slot index, so
  every probe hashes and compares machine integers (and sifting's eager
  deletions are plain key removals).
* All boolean connectives funnel into one recursive ``_ite`` with the
  Brace–Rudell–Bryant *standard triple* normalisation, backed by a single
  packed-integer-keyed computed cache shared with quantification and the
  relational product, bounded at ``cache_ratio`` times the unique-table
  size and dropped wholesale on overflow or garbage collection (losing
  entries only costs recomputation, never correctness).

Handles: the public API still trades in node objects with
``variable``/``low``/``high``/``identifier`` attributes (so the generic
algorithms, :func:`repro.clocks.bdd.dump_nodes` and every engine run
unmodified).  :class:`ArrayBDDNode` is a two-word view over an edge,
canonicalised through a ``WeakValueDictionary`` so ``is``-identity works
exactly as with object nodes; its ``low``/``high`` properties push the
complement bit down, presenting the plain-BDD view serialisation expects.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from .bdd import GLOBAL_STATS, BDDManager, NodeBudgetExceeded

#: Level sentinel for the terminal — orders below every real variable.
_BIG = 1 << 60

#: Computed-table operation tags (one cache, many operations; the tag
#: occupies the low 3 bits of the packed cache key).
_OP_ITE = 1
_OP_EX = 2
_OP_ALL = 3
_OP_ANDEX = 4


class ArrayBDDNode:
    """A canonical handle over one edge of an :class:`ArrayBDDManager`.

    Presents the object-core node protocol (``variable``, ``low``,
    ``high``, ``identifier``, ``is_terminal``) over the packed edge; the
    complement bit is pushed into the children on access, so walking
    ``low``/``high`` yields the plain (complement-free) view of the
    function.  Handles are hash-consed per edge through the manager's weak
    table, so two references to the same function are the same object.
    """

    __slots__ = ("manager", "_edge", "__weakref__")

    def __init__(self, manager: "ArrayBDDManager", edge: int) -> None:
        self.manager = manager
        self._edge = edge

    @property
    def identifier(self) -> int:
        # uid is per-slot and never reused, the low bit keeps f and ¬f
        # distinct — together: a process-unique, never-recycled function id
        # (the IncrementalDumper contract).
        return (self.manager._uid[self._edge >> 1] << 1) | (self._edge & 1)

    @property
    def variable(self) -> Optional[str]:
        n = self._edge >> 1
        if n == 0:
            return None
        manager = self.manager
        return manager._name_of[manager._var[n]]

    @property
    def is_terminal(self) -> bool:
        return self._edge < 2

    @property
    def low(self) -> Optional["ArrayBDDNode"]:
        e = self._edge
        n = e >> 1
        if n == 0:
            return None
        manager = self.manager
        return manager._handle(manager._lo[n] ^ (e & 1))

    @property
    def high(self) -> Optional["ArrayBDDNode"]:
        e = self._edge
        n = e >> 1
        if n == 0:
            return None
        manager = self.manager
        return manager._handle(manager._hi[n] ^ (e & 1))

    def __repr__(self) -> str:
        if self._edge < 2:
            return f"BDD({'1' if self._edge == 0 else '0'})"
        return f"BDD({self.variable}, id={self.identifier})"


class ArrayBDDManager(BDDManager):
    """The flat-array, complement-edge BDD core (see the module docstring)."""

    core = "array"

    #: The computed cache is bounded at ``cache_ratio x unique-table size``
    #: (with a fixed floor): when an insert trips the bound the limit is
    #: re-derived from the table's current size, and the cache is dropped
    #: wholesale if it is still over — so between garbage collections the
    #: cache tracks the diagram store instead of growing without bound.
    _default_cache_ratio = 4.0

    _MIN_CACHE = 1 << 12

    def _setup_core(self) -> None:
        # Slot 0 is the single terminal; edge 0 = TRUE, edge 1 = FALSE.
        self._var: list[int] = [0]   # variable id per slot, -1 = free slot
        self._lo: list[int] = [0]
        self._hi: list[int] = [0]
        self._uid: list[int] = [0]   # stable per-slot ids, never reused
        self._ref: list[int] = [0]   # refcounts, meaningful during reorders
        self._next_uid = 1
        self._created = 0
        self._count = 0              # live (non-free) internal slots
        self._free: list[int] = []   # reusable slots (refilled by GC sweeps)
        # The unique table: packed ``(vid << 64) | (lo << 32) | hi`` integer
        # keys to slot indices.  Integer keys hash and compare in C, which
        # is what makes ``_mk`` cheaper than the object core's per-manager
        # dict of tuples; deletion (sifting) is a plain ``del``.
        self._index: dict[int, int] = {}
        # Variable bookkeeping: names <-> stable variable ids <-> levels.
        # Nodes store the id, so a level exchange never rewrites node data
        # beyond the two levels being swapped.
        self._name_of: list[Optional[str]] = [None]  # id 0 = the terminal
        self._varids: dict[str, int] = {}
        self._level_of: list[int] = [_BIG]
        self._var_at: list[int] = []                 # level -> variable id
        self._var_nodes: dict[int, list[int]] = {}   # id -> slots (lazily filtered)
        # One computed cache for every operation, keyed on packed integers
        # with a 3-bit op tag; bounded at ``cache_ratio`` x the unique-table
        # size and dropped wholesale on overflow or garbage collection.
        self._cache: dict[int, int] = {}
        self._cache_limit = self._MIN_CACHE
        self._quant_ids: dict[frozenset, int] = {}
        self._handles: "weakref.WeakValueDictionary[int, ArrayBDDNode]" = (
            weakref.WeakValueDictionary()
        )
        self.true = ArrayBDDNode(self, 0)
        self.false = ArrayBDDNode(self, 1)
        self._handles[0] = self.true
        self._handles[1] = self.false

    # -- handles -------------------------------------------------------------------

    def _handle(self, edge: int) -> ArrayBDDNode:
        handle = self._handles.get(edge)
        if handle is None:
            handle = ArrayBDDNode(self, edge)
            self._handles[edge] = handle
        return handle

    # -- variables -----------------------------------------------------------------

    def _declared(self, name: str) -> None:
        vid = len(self._name_of)
        self._varids[name] = vid
        self._name_of.append(name)
        self._level_of.append(len(self._var_at))
        self._var_at.append(vid)

    def var(self, name: str) -> ArrayBDDNode:
        """The BDD of the literal ``name``."""
        self.declare(name)
        return self._handle(self._mk(self._varids[name], 1, 0))

    def nvar(self, name: str) -> ArrayBDDNode:
        """The BDD of the negated literal ``¬name``."""
        self.declare(name)
        return self._handle(self._mk(self._varids[name], 1, 0) ^ 1)

    # -- node construction ---------------------------------------------------------

    def _mk(self, vid: int, lo: int, hi: int) -> int:
        """Find-or-create the canonical edge for ``vid ? hi : lo``."""
        if lo == hi:
            return lo
        c = hi & 1
        if c:  # keep the stored high edge regular: push the complement up
            lo ^= 1
            hi ^= 1
        key = (vid << 64) | (lo << 32) | hi
        n = self._index.get(key)
        if n is not None:
            return (n << 1) | c
        if (
            self.node_budget is not None
            and not self._reordering
            and self._count >= self.node_budget
        ):
            raise NodeBudgetExceeded(
                f"unique table would outgrow the node budget of {self.node_budget}"
            )
        n = self._alloc(vid, lo, hi)
        self._index[key] = n
        return (n << 1) | c

    def _alloc(self, vid: int, lo: int, hi: int) -> int:
        """Claim a free (or fresh) slot for a new node."""
        # Reuse is safe mid-sift too: the lazy per-level lists may then hold
        # duplicate entries for a resurrected slot, which the exchange scan
        # deduplicates.
        if self._free:
            n = self._free.pop()
            self._var[n] = vid
            self._lo[n] = lo
            self._hi[n] = hi
            self._uid[n] = self._next_uid
            self._ref[n] = 0
        else:
            n = len(self._var)
            self._var.append(vid)
            self._lo.append(lo)
            self._hi.append(hi)
            self._uid.append(self._next_uid)
            self._ref.append(0)
        self._next_uid += 1
        self._created += 1
        self._var_nodes.setdefault(vid, []).append(n)
        self._count += 1
        if self._count > self.peak_nodes:
            self.peak_nodes = self._count
            if self._count > GLOBAL_STATS["peak_nodes"]:
                GLOBAL_STATS["peak_nodes"] = self._count
        return n

    def _rebuild_index(self) -> None:
        """Re-key the unique table from the live slots (after a GC sweep)."""
        V, L, H = self._var, self._lo, self._hi
        index: dict[int, int] = {}
        for n in range(1, len(V)):
            vid = V[n]
            if vid >= 0:
                index[(vid << 64) | (L[n] << 32) | H[n]] = n
        self._index = index

    def _cache_overflow(self) -> None:
        """Called when the computed cache outgrows its limit: raise the
        limit if the unique table has grown to justify it, clear otherwise."""
        limit = max(self._MIN_CACHE, int(self.cache_ratio * len(self._index)))
        if len(self._cache) >= limit:
            self._cache.clear()
            self.cache_clears += 1
        self._cache_limit = limit

    def _cache_clear(self) -> None:
        self._cache.clear()
        self._cache_limit = max(self._MIN_CACHE, int(self.cache_ratio * len(self._index)))
        self.cache_clears += 1

    # -- the ITE primitive ---------------------------------------------------------

    def ite(self, condition: ArrayBDDNode, then: ArrayBDDNode, otherwise: ArrayBDDNode) -> ArrayBDDNode:
        """The if-then-else combinator, core of every boolean connective."""
        return self._handle(self._ite(condition._edge, then._edge, otherwise._edge))

    def neg(self, node: ArrayBDDNode) -> ArrayBDDNode:
        """Negation ``¬node`` — one bit flip on the edge."""
        return self._handle(node._edge ^ 1)

    def _ite(self, f: int, g: int, h: int) -> int:
        # Terminal / absorption cases.
        if f == 0:
            return g
        if f == 1:
            return h
        if g == h:
            return g
        if g == f:
            g = 0
        elif g == f ^ 1:
            g = 1
        if h == f:
            h = 1
        elif h == f ^ 1:
            h = 0
        if g == h:
            return g
        if g == 0 and h == 1:
            return f
        if g == 1 and h == 0:
            return f ^ 1
        # Standard-triple normalisation: pick a canonical representative of
        # the equivalent (f, g, h) argument triples so commutative forms
        # share one cache line.
        if g == 0:            # ite(f, 1, h) = f OR h = ite(h, 1, f)
            if h < f:
                f, h = h, f
        elif h == 1:          # ite(f, g, 0) = f AND g = ite(g, f, 0)
            if g < f:
                f, g = g, f
        elif h == g ^ 1:      # ite(f, g, ¬g) = f XNOR g = ite(g, f, ¬f)
            if g < f:
                f, g = g, f
                h = g ^ 1
        if f & 1:             # regular first argument: ite(¬f, g, h) = ite(f, h, g)
            f ^= 1
            g, h = h, g
        flip = g & 1          # regular then-branch: complement the output
        if flip:
            g ^= 1
            h ^= 1
        cache = self._cache
        key = (((f << 32 | g) << 32 | h) << 3) | _OP_ITE
        result = cache.get(key)
        if result is not None:
            self.cache_hits += 1
            return result ^ flip
        self.cache_misses += 1
        V, L, H, LEV = self._var, self._lo, self._hi, self._level_of
        nf = f >> 1
        level = LEV[V[nf]]
        ng = g >> 1
        if ng:
            lg = LEV[V[ng]]
            if lg < level:
                level = lg
        nh = h >> 1
        if nh:
            lh = LEV[V[nh]]
            if lh < level:
                level = lh
        if LEV[V[nf]] == level:   # f is regular here: cofactor directly
            f0, f1 = L[nf], H[nf]
        else:
            f0 = f1 = f
        if ng and LEV[V[ng]] == level:  # g is regular after the flip
            g0, g1 = L[ng], H[ng]
        else:
            g0 = g1 = g
        if nh and LEV[V[nh]] == level:  # h may carry a complement bit
            ch = h & 1
            h0, h1 = L[nh] ^ ch, H[nh] ^ ch
        else:
            h0 = h1 = h
        r1 = self._ite(f1, g1, h1)
        r0 = self._ite(f0, g0, h0)
        result = r1 if r0 == r1 else self._mk(self._var_at[level], r0, r1)
        cache[key] = result
        if len(cache) >= self._cache_limit:
            self._cache_overflow()
        return result ^ flip

    # -- quantification and relational operations ---------------------------------------

    def _quant_set(self, variables: Iterable[str]) -> tuple[frozenset, int]:
        names = variables if isinstance(variables, frozenset) else frozenset(variables)
        varids = self._varids
        # Undeclared names cannot occur in any diagram: drop them.
        vids = frozenset(varids[name] for name in names if name in varids)
        set_id = self._quant_ids.get(vids)
        if set_id is None:
            set_id = len(self._quant_ids)
            self._quant_ids[vids] = set_id
        return vids, set_id

    def exists(self, node: ArrayBDDNode, variables: Iterable[str]) -> ArrayBDDNode:
        """Existential quantification ``∃ variables . node``."""
        vids, set_id = self._quant_set(variables)
        if not vids:
            return self._handle(node._edge)
        deepest = max(self._level_of[v] for v in vids)
        return self._handle(self._quantify(node._edge, vids, set_id, True, deepest))

    def forall(self, node: ArrayBDDNode, variables: Iterable[str]) -> ArrayBDDNode:
        """Universal quantification ``∀ variables . node``."""
        vids, set_id = self._quant_set(variables)
        if not vids:
            return self._handle(node._edge)
        deepest = max(self._level_of[v] for v in vids)
        return self._handle(self._quantify(node._edge, vids, set_id, False, deepest))

    def _quantify(self, e: int, vids: frozenset, set_id: int, existential: bool, deepest: int) -> int:
        # Quantification does not commute with complement (∃x.¬f ≠ ¬∃x.f),
        # so the cache keys and the recursion work on the full edge, pushing
        # the complement bit into the cofactors.
        n = e >> 1
        if n == 0:
            return e
        V, L, H, LEV = self._var, self._lo, self._hi, self._level_of
        vid = V[n]
        if LEV[vid] > deepest:  # no quantified variable below this level
            return e
        cache = self._cache
        key = ((e << 32 | set_id) << 3) | (_OP_EX if existential else _OP_ALL)
        result = cache.get(key)
        if result is not None:
            self.cache_hits += 1
            return result
        self.cache_misses += 1
        c = e & 1
        lo = L[n] ^ c
        hi = H[n] ^ c
        if vid in vids:
            r0 = self._quantify(lo, vids, set_id, existential, deepest)
            if existential:
                if r0 == 0:
                    result = 0
                else:
                    r1 = self._quantify(hi, vids, set_id, existential, deepest)
                    result = self._ite(r0, 0, r1)  # r0 OR r1
            else:
                if r0 == 1:
                    result = 1
                else:
                    r1 = self._quantify(hi, vids, set_id, existential, deepest)
                    result = self._ite(r0, r1, 1)  # r0 AND r1
        else:
            r0 = self._quantify(lo, vids, set_id, existential, deepest)
            r1 = self._quantify(hi, vids, set_id, existential, deepest)
            result = r1 if r0 == r1 else self._mk(vid, r0, r1)
        cache[key] = result
        if len(cache) >= self._cache_limit:
            self._cache_overflow()
        return result

    def and_exists(self, left: ArrayBDDNode, right: ArrayBDDNode, variables: Iterable[str]) -> ArrayBDDNode:
        """The relational product ``∃ variables . left ∧ right`` in one pass.

        Quantifying while conjoining avoids materialising the (often much
        larger) conjunction — the classical optimisation of symbolic image
        computation.
        """
        vids, set_id = self._quant_set(variables)
        deepest = -1
        if vids:
            deepest = max(self._level_of[v] for v in vids)
        return self._handle(self._andex(left._edge, right._edge, vids, set_id, deepest))

    def _andex(self, a: int, b: int, vids: frozenset, set_id: int, deepest: int) -> int:
        if a == 1 or b == 1:
            return 1
        if a == b:
            if a < 2:
                return a
            return self._quantify(a, vids, set_id, True, deepest)
        if a == b ^ 1:
            return 1
        if a == 0:
            return self._quantify(b, vids, set_id, True, deepest)
        if b == 0:
            return self._quantify(a, vids, set_id, True, deepest)
        V, L, H, LEV = self._var, self._lo, self._hi, self._level_of
        na, nb = a >> 1, b >> 1
        la, lb = LEV[V[na]], LEV[V[nb]]
        if la > deepest and lb > deepest:
            return self._ite(a, b, 1)  # plain conjunction below the last quantified level
        if a > b:
            a, b = b, a
            na, nb = nb, na
            la, lb = lb, la
        cache = self._cache
        key = (((a << 32 | b) << 32 | set_id) << 3) | _OP_ANDEX
        result = cache.get(key)
        if result is not None:
            self.cache_hits += 1
            return result
        self.cache_misses += 1
        level = la if la < lb else lb
        vid = self._var_at[level]
        if la == level:
            ca = a & 1
            a0, a1 = L[na] ^ ca, H[na] ^ ca
        else:
            a0 = a1 = a
        if lb == level:
            cb = b & 1
            b0, b1 = L[nb] ^ cb, H[nb] ^ cb
        else:
            b0 = b1 = b
        if vid in vids:
            r0 = self._andex(a0, b0, vids, set_id, deepest)
            if r0 == 0:
                result = 0
            else:
                r1 = self._andex(a1, b1, vids, set_id, deepest)
                result = self._ite(r0, 0, r1)  # r0 OR r1
        else:
            r0 = self._andex(a0, b0, vids, set_id, deepest)
            r1 = self._andex(a1, b1, vids, set_id, deepest)
            result = r1 if r0 == r1 else self._mk(vid, r0, r1)
        cache[key] = result
        if len(cache) >= self._cache_limit:
            self._cache_overflow()
        return result

    def rename(self, node: ArrayBDDNode, mapping: Mapping[str, str]) -> ArrayBDDNode:
        """Simultaneous substitution of variables by variables.

        When the renaming is monotone on the support's levels (the
        prime/unprime case: grouped pairs keep both orders aligned), the
        diagram is relabelled structurally bottom-up in one O(n) pass;
        otherwise it falls back to ite-composition, which re-reduces under
        the target order.
        """
        relevant = self._rename_relevant(node, mapping)
        if not relevant:
            return self._handle(node._edge)
        varids = self._varids
        vmap = {varids[old]: varids[new] for old, new in relevant.items()}
        LEV = self._level_of
        ordered = sorted(self._support_vids(node._edge), key=LEV.__getitem__)
        mapped = [LEV[vmap.get(v, v)] for v in ordered]
        memo: dict[int, int] = {}
        if all(x < y for x, y in zip(mapped, mapped[1:])):
            edge = node._edge
            result = self._relabel(edge & ~1, vmap, memo) ^ (edge & 1)
            return self._handle(result)
        return self._handle(self._compose(node._edge, vmap, memo))

    def _relabel(self, e: int, vmap: dict[int, int], memo: dict[int, int]) -> int:
        """Structural bottom-up relabel of a regular edge (order-preserving map)."""
        n = e >> 1
        if n == 0:
            return e
        done = memo.get(n)
        if done is not None:
            return done
        lo = self._lo[n]
        hi = self._hi[n]
        rlo = self._relabel(lo & ~1, vmap, memo) ^ (lo & 1)
        rhi = self._relabel(hi, vmap, memo)  # stored high edges are regular
        vid = self._var[n]
        result = self._mk(vmap.get(vid, vid), rlo, rhi)
        memo[n] = result
        return result

    def _compose(self, e: int, vmap: dict[int, int], memo: dict[int, int]) -> int:
        """Rename by ite-composition (correct for order-breaking maps)."""
        n = e >> 1
        if n == 0:
            return e
        c = e & 1
        done = memo.get(n)
        if done is None:
            lo = self._compose(self._lo[n], vmap, memo)
            hi = self._compose(self._hi[n], vmap, memo)
            vid = self._var[n]
            literal = self._mk(vmap.get(vid, vid), 1, 0)
            done = self._ite(literal, hi, lo)
            memo[n] = done
        return done ^ c  # substitution commutes with negation

    # -- dynamic variable reordering -----------------------------------------------------

    def _population(self) -> int:
        return self._count

    def _nodes_created(self) -> int:
        return self._created

    def _cache_entries(self) -> int:
        return len(self._cache)

    def _begin_reorder(self, root_nodes: Sequence[ArrayBDDNode]) -> None:
        edges = [handle._edge for handle in root_nodes]
        self._collect(edges)
        # Root and parent reference counts let exchanges delete dead slots
        # eagerly: from here on ``_count`` is the live total, the sifting
        # metric.
        V, L, H, R = self._var, self._lo, self._hi, self._ref
        for n in range(1, len(V)):
            if V[n] >= 0:
                R[n] = 0
        for n in range(1, len(V)):
            if V[n] >= 0:
                m = L[n] >> 1
                if m:
                    R[m] += 1
                m = H[n] >> 1
                if m:
                    R[m] += 1
        for e in edges:
            n = e >> 1
            if n:
                R[n] += 1

    def _end_reorder(self, root_nodes: Sequence[ArrayBDDNode]) -> None:
        self._collect([handle._edge for handle in root_nodes])

    def _collect(self, root_edges: Sequence[int]) -> None:
        """Mark-and-sweep down to the diagrams of ``root_edges``.

        Unreachable slots are freed for reuse, the unique table is rebuilt
        without tombstones, the per-level lists are refiltered, and the
        computed cache is dropped wholesale (its entries may name freed
        slots).
        """
        V, L, H = self._var, self._lo, self._hi
        mark = bytearray(len(V))
        stack = [e >> 1 for e in root_edges if e >= 2]
        while stack:
            n = stack.pop()
            if mark[n]:
                continue
            mark[n] = 1
            m = L[n] >> 1
            if m and not mark[m]:
                stack.append(m)
            m = H[n] >> 1
            if m and not mark[m]:
                stack.append(m)
        var_nodes: dict[int, list[int]] = {}
        free: list[int] = []
        count = 0
        for n in range(1, len(V)):
            if mark[n]:
                var_nodes.setdefault(V[n], []).append(n)
                count += 1
            else:
                V[n] = -1
                free.append(n)
        self._var_nodes = var_nodes
        self._free = free
        self._count = count
        self._rebuild_index()
        self._cache_clear()

    def _swap_adjacent(self, position: int) -> None:
        """Exchange the variables at ``position`` and ``position + 1`` in place.

        The classical level exchange over the array store: an affected node
        keeps its slot and uid (so handles and shipped identifiers stay
        valid) while its variable id, low and high are rewritten.  The
        complement-edge invariant survives without any edge flipping: the
        new high child is assembled from the old high cofactors, which are
        read off stored (hence regular) high edges, so ``_claim`` always
        returns it regular.
        """
        var_at = self._var_at
        upper = var_at[position]
        lower = var_at[position + 1]
        V, L, H, R = self._var, self._lo, self._hi, self._ref
        affected: list[int] = []
        remaining: list[int] = []
        seen: set[int] = set()
        for n in self._var_nodes.get(upper, ()):
            if V[n] != upper or R[n] <= 0 or n in seen:
                continue  # died, migrated, or a stale duplicate entry
            seen.add(n)
            m = L[n] >> 1
            k = H[n] >> 1
            if (m and V[m] == lower) or (k and V[k] == lower):
                affected.append(n)
            else:
                remaining.append(n)
        # Reset the level list before rewriting: freshly created upper-level
        # children re-register themselves through ``_claim``.
        self._var_nodes[upper] = remaining
        lower_level = self._var_nodes.setdefault(lower, [])
        # Level bookkeeping: ids, names, ranks.
        var_at[position], var_at[position + 1] = lower, upper
        self._level_of[upper] = position + 1
        self._level_of[lower] = position
        upper_name = self._name_of[upper]
        lower_name = self._name_of[lower]
        self._order[position], self._order[position + 1] = lower_name, upper_name
        self._rank[upper_name] = position + 1
        self._rank[lower_name] = position
        for n in affected:
            old_lo = L[n]
            old_hi = H[n]
            self._table_delete(upper, old_lo, old_hi)
            m = old_lo >> 1
            if m and V[m] == lower:
                c = old_lo & 1
                lo0, lo1 = L[m] ^ c, H[m] ^ c
            else:
                lo0 = lo1 = old_lo
            k = old_hi >> 1  # stored high edges are regular: no bit to push
            if k and V[k] == lower:
                hi0, hi1 = L[k], H[k]
            else:
                hi0 = hi1 = old_hi
            new_hi = self._claim(upper, lo1, hi1)
            new_lo = self._claim(upper, lo0, hi0)
            assert new_hi & 1 == 0, "level exchange produced a complemented high edge"
            V[n] = lower
            L[n] = new_lo
            H[n] = new_hi
            self._table_insert(lower, new_lo, new_hi, n)
            lower_level.append(n)
            self._release(old_lo)
            self._release(old_hi)

    def _claim(self, vid: int, lo: int, hi: int) -> int:
        """Reduced edge construction during a reorder, claiming one reference."""
        R = self._ref
        if lo == hi:
            n = lo >> 1
            if n:
                R[n] += 1
            return lo
        c = hi & 1
        if c:
            lo ^= 1
            hi ^= 1
        key = (vid << 64) | (lo << 32) | hi
        n = self._index.get(key)
        if n is not None:
            R[n] += 1
            return (n << 1) | c
        n = self._alloc(vid, lo, hi)
        self._index[key] = n
        R = self._ref  # _alloc may have extended the list object in place
        R[n] = 1
        m = lo >> 1
        if m:
            R[m] += 1
        m = hi >> 1
        if m:
            R[m] += 1
        return (n << 1) | c

    def _release(self, e: int) -> None:
        """Drop one reference; free the slot (and cascade) when none remain."""
        n = e >> 1
        if n == 0:
            return
        R = self._ref
        R[n] -= 1
        if R[n] > 0:
            return
        V, L, H = self._var, self._lo, self._hi
        self._table_delete(V[n], L[n], H[n])
        V[n] = -1
        self._count -= 1
        self._free.append(n)
        self._release(L[n])
        self._release(H[n])

    def _table_delete(self, vid: int, lo: int, hi: int) -> None:
        del self._index[(vid << 64) | (lo << 32) | hi]

    def _table_insert(self, vid: int, lo: int, hi: int, node: int) -> None:
        """Insert a rewritten node under its new key (must not collide)."""
        key = (vid << 64) | (lo << 32) | hi
        assert key not in self._index, "level exchange produced a duplicate"
        self._index[key] = node

    def _live_counts(self, roots: Sequence[ArrayBDDNode]) -> dict[str, int]:
        """Per-variable node counts of the diagrams reachable from ``roots``."""
        counts = {name: 0 for name in self._order}
        V, L, H = self._var, self._lo, self._hi
        name_of = self._name_of
        seen: set[int] = set()
        stack = [handle._edge >> 1 for handle in roots]
        while stack:
            n = stack.pop()
            if n == 0 or n in seen:
                continue
            seen.add(n)
            counts[name_of[V[n]]] += 1
            stack.append(L[n] >> 1)
            stack.append(H[n] >> 1)
        return counts

    # -- queries -------------------------------------------------------------------

    def _load_payload(self, payload: Mapping) -> list[ArrayBDDNode]:
        """Edge-level fast path for :func:`repro.clocks.bdd.load_nodes`.

        Rebuilds the table over raw edges — no handles, no weak-dict
        traffic — and short-circuits ``ite(var, high, low)`` to a single
        ``_mk`` whenever the variable sits above both children in the
        current order (always true when the dump-time order is a suffix-
        compatible match, the warm-cache common case).
        """
        for name in payload["order"]:
            self.declare(name)
        varids = self._varids
        V, LEV = self._var, self._level_of
        table = [1, 0]  # payload index 0 = false, 1 = true
        for entry in payload["nodes"]:
            variable, low, high = entry
            if (
                not isinstance(variable, str)
                or not (0 <= low < len(table))
                or not (0 <= high < len(table))
            ):
                raise ValueError(f"malformed BDD dump entry {entry!r}")
            vid = varids.get(variable)
            if vid is None:
                self.declare(variable)
                vid = varids[variable]
            level = LEV[vid]
            lo_e = table[low]
            hi_e = table[high]
            nl = lo_e >> 1
            nh = hi_e >> 1
            if (nl == 0 or LEV[V[nl]] > level) and (nh == 0 or LEV[V[nh]] > level):
                table.append(self._mk(vid, lo_e, hi_e))
            else:  # the target order differs: re-reduce through ITE
                table.append(self._ite(self._mk(vid, 1, 0), hi_e, lo_e))
        roots = payload["roots"]
        if any(not isinstance(index, int) or not (0 <= index < len(table)) for index in roots):
            raise ValueError("BDD dump root index out of range")
        return [self._handle(table[index]) for index in roots]

    def _node(self, variable: str, low: ArrayBDDNode, high: ArrayBDDNode) -> ArrayBDDNode:
        self.declare(variable)
        return self._handle(self._mk(self._varids[variable], low._edge, high._edge))

    def _support_vids(self, e: int) -> set[int]:
        V, L, H = self._var, self._lo, self._hi
        seen: set[int] = set()
        vids: set[int] = set()
        stack = [e >> 1]
        while stack:
            n = stack.pop()
            if n == 0 or n in seen:
                continue
            seen.add(n)
            vids.add(V[n])
            stack.append(L[n] >> 1)
            stack.append(H[n] >> 1)
        return vids

    def support(self, node: ArrayBDDNode) -> set[str]:
        """Variables the function actually depends on."""
        name_of = self._name_of
        return {name_of[v] for v in self._support_vids(node._edge)}

    def size(self, node: ArrayBDDNode) -> int:
        """Number of distinct decision slots of the diagram.

        With complement edges a function and its negation share every slot,
        so this can be smaller than the object core's plain-diagram size —
        it is the number the sifting metric and ``table_nodes`` count in.
        """
        V, L, H = self._var, self._lo, self._hi
        seen: set[int] = set()
        stack = [node._edge >> 1]
        count = 0
        while stack:
            n = stack.pop()
            if n == 0 or n in seen:
                continue
            seen.add(n)
            count += 1
            stack.append(L[n] >> 1)
            stack.append(H[n] >> 1)
        return count

    def evaluate(self, node: ArrayBDDNode, assignment: dict[str, bool]) -> bool:
        """Evaluate the function under a total assignment of its support."""
        V, L, H = self._var, self._lo, self._hi
        name_of = self._name_of
        e = node._edge
        n = e >> 1
        while n:
            try:
                value = assignment[name_of[V[n]]]
            except KeyError:
                raise KeyError(f"assignment misses variable {name_of[V[n]]!r}") from None
            e = (H[n] if value else L[n]) ^ (e & 1)
            n = e >> 1
        return e == 0

    def count_satisfying(self, node: ArrayBDDNode, variables: Optional[list[str]] = None) -> int:
        """Number of satisfying assignments over ``variables``.

        Edge-level dynamic programming: one memo entry per regular slot and
        the complement handled arithmetically (``|¬f| = 2^k − |f|``), so
        counting a huge reached set walks integers instead of materialising
        a weakref handle per visited node.
        """
        names = self._counting_order(node, variables)
        width = len(names)
        LEV = self._level_of
        position = {LEV[self._varids[name]]: index for index, name in enumerate(names)}
        V, L, H = self._var, self._lo, self._hi
        memo: dict[int, int] = {}

        def count(e: int, index: int) -> int:
            # models of edge ``e`` over ``names[index:]``
            n = e >> 1
            if n == 0:
                return 0 if e & 1 else 1 << (width - index)
            p = position[LEV[V[n]]]
            sub = memo.get(n)
            if sub is None:
                # models of the regular function at ``n`` over ``names[p:]``
                sub = count(L[n], p + 1) + count(H[n], p + 1)
                memo[n] = sub
            if e & 1:
                sub = (1 << (width - p)) - sub
            return sub << (p - index)

        return count(node._edge, 0)

    # -- invariant checking (tests) --------------------------------------------------

    def assert_canonical(self) -> None:
        """Check the complement-edge canonicity invariants over every live slot."""
        V, L, H = self._var, self._lo, self._hi
        for n in range(1, len(V)):
            if V[n] < 0:
                continue
            if H[n] & 1:
                raise AssertionError(f"slot {n} stores a complemented high edge")
            if L[n] == H[n]:
                raise AssertionError(f"slot {n} is redundant (equal children)")
