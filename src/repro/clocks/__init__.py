"""The clock calculus of the SIGNAL compiler: BDDs, clock expressions,
constraint extraction, hierarchization and static endochrony analysis."""

from .bdd import BDDManager, BDDNode
from .calculus import (
    ClockCalculus,
    ClockEquation,
    ClockSystem,
    SyntheticCondition,
    check_clock_system,
    clock_system,
)
from .endochrony import EndochronyReport, analyse_endochrony, master_clock_of
from .expressions import (
    ClockAlgebra,
    ClockExpression,
    ClockVar,
    Diff,
    EmptyClock,
    FalseSample,
    Join,
    Meet,
    TrueSample,
    join_all,
    meet_all,
)
from .hierarchy import ClockClass, ClockHierarchy, build_hierarchy

__all__ = [
    "BDDManager",
    "BDDNode",
    "ClockAlgebra",
    "ClockCalculus",
    "ClockClass",
    "ClockEquation",
    "ClockExpression",
    "ClockHierarchy",
    "ClockSystem",
    "ClockVar",
    "Diff",
    "EmptyClock",
    "EndochronyReport",
    "FalseSample",
    "Join",
    "Meet",
    "SyntheticCondition",
    "TrueSample",
    "analyse_endochrony",
    "build_hierarchy",
    "check_clock_system",
    "clock_system",
    "join_all",
    "master_clock_of",
    "meet_all",
]
