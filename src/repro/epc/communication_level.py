"""Communication level of the EPC: the ChMP channel refined into a bus.

"The communication layer of the EPC mainly consists of a data-type refinement
of the ChMP channel and of the decomposition of the renamed methods send and
receive into sub-procedures.  It intends to make the implementation of the
ChMP as a bus explicit." (Section 4 of the paper.)

The two units of the architecture level are kept as they are; only the
interconnect changes: requests and responses now travel over two instances of
the ``cBus`` channel, whose ``write``/``read`` methods drive explicit
``ready``/``ack`` wires (the paper's listing).  The refinement obligation is
that the ``ocount``/``parity`` flows are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..gals.channels import bus_channel
from ..specc.ast import Assign, Binary, Design, Lit, Var
from ..specc.builder import BehaviorBuilder, DesignBuilder
from ..specc.interpreter import DesignRun, run_design
from .spec_level import DEFAULT_WIDTH, reference_even, reference_ones


@dataclass
class CommunicationRun:
    """Flows produced by a communication-level execution."""

    workload: tuple[int, ...]
    counts: tuple[int, ...]
    parities: tuple[int, ...]
    bus_traffic: tuple[int, ...]
    run: DesignRun | None = None

    def matches_reference(self, width: int = DEFAULT_WIDTH) -> bool:
        """True when the flows agree with the golden model."""
        expected_counts = [reference_ones(word, width) for word in self.workload]
        expected_parities = [1 if reference_even(word, width) else 0 for word in self.workload]
        return list(self.counts) == expected_counts and list(self.parities) == expected_parities


def epc_communication_design(workload: Sequence[int], width: int = DEFAULT_WIDTH, name: str = "EpcCommunication") -> Design:
    """The communication-level EPC design over two cBus channels."""
    ones = (
        BehaviorBuilder("ones_comm", repeat=True)
        .local("data", 0)
        .local("ocount", 0)
        .local("mask", 1)
        .local("temp", 0)
        .call("Bus_req", "read", result="data")
        .assign("ocount", 0)
        .assign("mask", 1)
        .loop(
            Binary("!=", Var("data"), Lit(0)),
            [
                Assign("temp", Binary("&", Var("data"), Var("mask"))),
                Assign("ocount", Binary("+", Var("ocount"), Var("temp"))),
                Assign("data", Binary(">>", Var("data"), Lit(1))),
            ],
        )
        .call("Bus_resp", "write", [Var("ocount")])
        .build()
    )

    evenio = BehaviorBuilder("evenio_comm", repeat=False)
    evenio.local("count", 0)
    for word in workload:
        evenio.call("Bus_req", "write", [Lit(int(word) & ((1 << width) - 1))])
        evenio.call("Bus_resp", "read", result="count")
        evenio.assign("ocount", Var("count"))
        evenio.when(
            Binary("==", Binary("%", Var("count"), Lit(2)), Lit(0)),
            [Assign("parity", Lit(1))],
            [Assign("parity", Lit(0))],
        )

    return (
        DesignBuilder(name)
        .variable("ocount", 0)
        .variable("parity", 0)
        .channel(bus_channel("Bus_req", width=width))
        .channel(bus_channel("Bus_resp", width=width))
        .instance(ones, "ones")
        .instance(evenio.build(), "evenio")
        .build()
    )


def run_communication(workload: Sequence[int], width: int = DEFAULT_WIDTH, name: str = "EpcCommunication") -> CommunicationRun:
    """Interpret the bus-based communication level and collect its flows.

    ``bus_traffic`` records every value that transited over the request bus's
    ``data`` wire — used by the benchmarks to show the interconnect activity
    the refinement makes explicit.
    """
    design = epc_communication_design(workload, width, name)
    run = run_design(design, observed=["ocount", "parity", "Bus_req.data", "Bus_resp.data"])
    return CommunicationRun(
        tuple(int(w) for w in workload),
        tuple(run.flow("ocount")),
        tuple(run.flow("parity")),
        tuple(run.flow("Bus_req.data")),
        run,
    )
