"""The even-parity-checker (EPC) case study of the paper, at every refinement
level: specification (SpecC), architecture (ChMP channel and GALS/FIFO),
communication (bus), RTL (master-clocked FSM), plus the refinement chain that
verifies each step."""

from .architecture_level import (
    ArchitectureRun,
    epc_architecture_design,
    gals_epc_architecture,
    run_architecture,
    run_gals_architecture,
)
from .communication_level import CommunicationRun, epc_communication_design, run_communication
from .refinement import (
    DEFAULT_WORKLOAD,
    RefinementChainResult,
    ablation_drop_handshake,
    check_refinement_chain,
    check_rtl_bisimulation,
)
from .rtl_level import RtlRun, rtl_ones_process, rtl_reference_process, run_rtl
from .signal_model import (
    ONES_PAPER_SOURCE,
    epc_signal_composition,
    even_io_process,
    ones_endochronous_process,
    ones_paper_process,
    ones_translated,
)
from .spec_level import (
    DEFAULT_WIDTH,
    SpecificationRun,
    epc_specification_design,
    even_behavior,
    io_behavior,
    ones_behavior,
    reference_even,
    reference_ones,
    run_specification,
)

__all__ = [
    "ArchitectureRun",
    "CommunicationRun",
    "DEFAULT_WIDTH",
    "DEFAULT_WORKLOAD",
    "ONES_PAPER_SOURCE",
    "RefinementChainResult",
    "RtlRun",
    "SpecificationRun",
    "ablation_drop_handshake",
    "check_refinement_chain",
    "check_rtl_bisimulation",
    "epc_architecture_design",
    "epc_communication_design",
    "epc_signal_composition",
    "epc_specification_design",
    "even_behavior",
    "even_io_process",
    "gals_epc_architecture",
    "io_behavior",
    "ones_behavior",
    "ones_endochronous_process",
    "ones_paper_process",
    "ones_translated",
    "reference_even",
    "reference_ones",
    "rtl_ones_process",
    "rtl_reference_process",
    "run_architecture",
    "run_communication",
    "run_gals_architecture",
    "run_rtl",
    "run_specification",
]
