"""Architecture level of the EPC: ones and even+io over the ChMP channel.

"Suppose we have done so and consider the architecture layer of the SpecC
even-parity checker example.  We now have two behaviors, ``ones`` and
``even+io`` that communicate asynchronously via the ChMP channel."
(Section 4 of the paper.)

Two executable views are provided:

* the **SpecC view** — the two behaviors exchange the data word and the count
  through two instances of the paper's ChMP double-handshake channel, run on
  the discrete-event kernel;
* the **GALS/SIGNAL view** — the endochronous SIGNAL components of
  :mod:`repro.epc.signal_model` connected by FIFOs in a
  :class:`~repro.gals.architecture.GalsArchitecture`, the desynchronised
  implementation whose flow-preservation the refinement chain verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.values import EVENT
from ..gals.architecture import GalsArchitecture
from ..specc.ast import Binary, Design, Lit, Var
from ..specc.builder import BehaviorBuilder, DesignBuilder
from ..specc.interpreter import DesignRun, run_design
from ..gals.channels import chmp_channel
from .signal_model import even_io_process, ones_endochronous_process
from .spec_level import DEFAULT_WIDTH, reference_even, reference_ones


@dataclass
class ArchitectureRun:
    """Flows produced by an architecture-level execution."""

    workload: tuple[int, ...]
    counts: tuple[int, ...]
    parities: tuple[int, ...]
    run: DesignRun | None = None

    def matches_reference(self, width: int = DEFAULT_WIDTH) -> bool:
        """True when the flows agree with the golden model."""
        expected_counts = [reference_ones(word, width) for word in self.workload]
        expected_parities = [1 if reference_even(word, width) else 0 for word in self.workload]
        return list(self.counts) == expected_counts and list(self.parities) == expected_parities


def epc_architecture_design(workload: Sequence[int], name: str = "EpcArchitecture") -> Design:
    """The architecture-level EPC design over two ChMP channels."""
    from ..specc.ast import Assign

    ones = (
        BehaviorBuilder("ones_arch", repeat=True)
        .local("data", 0)
        .local("ocount", 0)
        .local("mask", 1)
        .local("temp", 0)
        .call("ChMP_req", "recv", result="data")
        .assign("ocount", 0)
        .assign("mask", 1)
        .loop(
            Binary("!=", Var("data"), Lit(0)),
            [
                Assign("temp", Binary("&", Var("data"), Var("mask"))),
                Assign("ocount", Binary("+", Var("ocount"), Var("temp"))),
                Assign("data", Binary(">>", Var("data"), Lit(1))),
            ],
        )
        .call("ChMP_resp", "send", [Var("ocount")])
        .build()
    )

    evenio = BehaviorBuilder("evenio_arch", repeat=False)
    evenio.local("count", 0)
    for word in workload:
        evenio.call("ChMP_req", "send", [Lit(int(word))])
        evenio.call("ChMP_resp", "recv", result="count")
        evenio.assign("ocount", Var("count"))
        evenio.when(
            Binary("==", Binary("%", Var("count"), Lit(2)), Lit(0)),
            [Assign("parity", Lit(1))],
            [Assign("parity", Lit(0))],
        )

    request_channel = chmp_channel("ChMP_req")
    response_channel = chmp_channel("ChMP_resp")
    return (
        DesignBuilder(name)
        .variable("ocount", 0)
        .variable("parity", 0)
        .channel(request_channel)
        .channel(response_channel)
        .instance(ones, "ones")
        .instance(evenio.build(), "evenio")
        .build()
    )


def run_architecture(workload: Sequence[int], name: str = "EpcArchitecture") -> ArchitectureRun:
    """Interpret the ChMP-based architecture level and collect its flows."""
    design = epc_architecture_design(workload, name)
    run = run_design(design, observed=["ocount", "parity"])
    return ArchitectureRun(
        tuple(int(w) for w in workload),
        tuple(run.flow("ocount")),
        tuple(run.flow("parity")),
        run,
    )


def gals_epc_architecture(workload: Sequence[int], capacity: int = 8, name: str = "EpcGals") -> GalsArchitecture:
    """The GALS/SIGNAL view: endochronous components connected by FIFOs."""
    architecture = GalsArchitecture(name)
    architecture.add_component("ones", ones_endochronous_process(), tick={"tick": EVENT})
    architecture.add_component("evenio", even_io_process())
    architecture.connect("ones", "Outport", "evenio", "ocount", capacity=capacity)
    architecture.feed("ones", "Inport", [int(w) for w in workload])
    return architecture


def run_gals_architecture(workload: Sequence[int], capacity: int = 8, schedule: Sequence[str] | None = None) -> ArchitectureRun:
    """Run the GALS view and collect the count and parity flows."""
    architecture = gals_epc_architecture(workload, capacity)
    traces = architecture.run_desynchronised(schedule=schedule)
    counts = tuple(traces["ones"].values("Outport"))
    parities = tuple(traces["evenio"].values("parity"))
    return ArchitectureRun(tuple(int(w) for w in workload), counts, parities)
