"""SIGNAL models of the EPC components.

Three SIGNAL views of the ``ones`` unit are provided, matching the three ways
the paper uses SIGNAL for the EPC:

* :func:`ones_paper_process` — the multi-clocked SIGNAL listing of the paper,
  obtained by parsing the paper's concrete syntax (``start ^= Inport``,
  over-sampling of the internal loop, ``Outport := ocount when data = 0``);
* :func:`ones_translated` — the process produced by the SpecC→SIGNAL
  translator from the specification-level behavior (critical sections, one
  step per basic operation);
* :func:`ones_endochronous_process` — the endochronous, architecture-ready
  version: the activation of every clock is governed by the state computed at
  the master clock, so the component can be dropped into a GALS architecture
  and scheduled purely by input availability.

The ``even+io`` unit is modelled by :func:`even_io_process`.
"""

from __future__ import annotations

from ..signal.ast import ProcessDefinition
from ..signal.dsl import ProcessBuilder, call, const, sig
from ..signal.parser import parse_process
from ..specc.translate import TranslationResult, translate_behavior
from .spec_level import ones_behavior

#: The SIGNAL encoding of the ``ones`` behavior, as printed in the paper
#: (0xffff initialisation shortened to fit the 8-bit default width).
ONES_PAPER_SOURCE = """
process ones = (? integer Inport; event start ! integer Outport; event done)
  (| start ^= Inport
   | Outport := ocount when data = 0
   | data := Inport default rshift(data$1 init 255)
   | ocount := (0 when ^Inport) default ((ocount$1 init 0) + xand(data, 1))
   | ocount ^= data
   | done ^= Outport
  |) where integer data, ocount;
end;
"""


def ones_paper_process() -> ProcessDefinition:
    """The paper's SIGNAL ``ones`` process (multi-clocked, not endochronous)."""
    return parse_process(ONES_PAPER_SOURCE)


def ones_translated() -> TranslationResult:
    """The SpecC ``ones`` behavior translated to SIGNAL (master-clocked FSM)."""
    return translate_behavior(ones_behavior())


def ones_endochronous_process(name: str = "OnesEndo") -> ProcessDefinition:
    """An endochronous ``ones``: input consumption governed by the local state.

    States: 0 — waiting for (and consuming) a word on ``Inport``; 1 — shifting
    and counting; 2 — emitting ``Outport``.  The clock of ``Inport`` is
    ``tick ^* [state = 0]``: the process *requires* a word exactly when it is
    ready for one, which is what makes it insensitive to the arrival times of
    its inputs (endochrony) and therefore safe to desynchronise.
    """
    builder = ProcessBuilder(name)
    tick = builder.input("tick", "event")
    inport = builder.input("Inport", "integer")
    outport = builder.output("Outport", "integer")
    state = builder.local("state", "integer")
    state_prev = builder.local("state_prev", "integer")
    data = builder.local("data", "integer")
    data_prev = builder.local("data_prev", "integer")
    ocount = builder.local("ocount", "integer")
    ocount_prev = builder.local("ocount_prev", "integer")

    at_wait = state_prev.eq(0)
    at_compute = state_prev.eq(1)
    at_emit = state_prev.eq(2)

    builder.define(state_prev, state.delayed(0))
    builder.define(data_prev, data.delayed(0))
    builder.define(ocount_prev, ocount.delayed(0))

    shifted = call("rshift", data_prev)
    builder.define(
        data,
        inport.when(at_wait).default(shifted.when(at_compute)).default(data_prev),
    )
    builder.define(
        ocount,
        const(0).when(at_wait).default((ocount_prev + call("xand", data_prev, 1)).when(at_compute)).default(ocount_prev),
    )
    builder.define(
        state,
        const(1).when(at_wait)
        .default((const(2).when(shifted.eq(0)).default(const(1))).when(at_compute))
        .default(const(0).when(at_emit))
        .default(state_prev),
    )
    builder.define(outport, ocount_prev.when(at_emit))
    builder.synchronize(state, tick)
    builder.synchronize(data, tick)
    builder.synchronize(ocount, tick)
    builder.constrain(inport, tick.clock().when(at_wait))
    return builder.build()


def even_io_process(name: str = "EvenIo") -> ProcessDefinition:
    """The ``even + io`` unit as a SIGNAL process.

    The paper notes that "the SIGNAL compiler could be used to merge the other
    IO and even behaviors into a single SpecC FSM, using clock hierarchization
    techniques"; this is that merged unit.  It consumes the count flow and
    produces the parity verdict (1 when even), synchronously with its input —
    a trivially endochronous process whose master clock is ``ocount``.
    """
    builder = ProcessBuilder(name)
    ocount = builder.input("ocount", "integer")
    parity = builder.output("parity", "integer")
    builder.define(parity, (ocount + 1) % const(2))
    builder.synchronize(parity, ocount)
    return builder.build()


def epc_signal_composition(name: str = "EpcSignal") -> ProcessDefinition:
    """The synchronous composition ``ones | even_io`` at the SIGNAL level.

    The ``Outport`` of the endochronous ``ones`` is wired to the ``ocount``
    input of the ``even+io`` unit; the composite is the synchronous reference
    the GALS (desynchronised) implementation is checked against.
    """
    from ..signal.ast import compose

    ones = ones_endochronous_process()
    evenio = even_io_process().renamed({"ocount": "Outport"}, name="EvenIoWired")
    return compose(name, ones, evenio)
