"""Specification level of the even-parity checker (EPC).

"The EPC consists of three functional units: an IO interface process, an even
test process and a main ones counting process.  The behavior ``ones``
determines the parity of an input data received along ``Inport``.  Upon
receipt of the ``start`` notification, it repeatedly shifts the data until it
is zeroed.  The output count ``ocount`` is sent along ``Outport`` and ``done``
notified."  (Section 4 of the paper.)

This module builds that specification-level design in the SpecC AST: the
``ones`` behavior exactly as listed in the paper, the ``even`` test, the
``io`` interface driving a workload of data words, and the composed design.
Reference functions (`reference_ones`, `reference_even`) give the golden
results the whole refinement chain is checked against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..specc.ast import Assign, Behavior, Binary, Design, If, Lit, Var, While
from ..specc.builder import BehaviorBuilder, DesignBuilder
from ..specc.interpreter import DesignRun, run_design

#: Default data width of the EPC (bits); the paper's SpecC uses unsigned int.
DEFAULT_WIDTH = 8


def reference_ones(word: int, width: int = DEFAULT_WIDTH) -> int:
    """Golden model: number of one bits of ``word`` (the value ``ones`` computes)."""
    return bin(word & ((1 << width) - 1)).count("1")


def reference_even(word: int, width: int = DEFAULT_WIDTH) -> bool:
    """Golden model: even-parity verdict of ``word``."""
    return reference_ones(word, width) % 2 == 0


def ones_behavior(name: str = "ones") -> Behavior:
    """The ``ones`` behavior, as listed in the paper.

    ``while (1) { wait(start); data = Inport; ocount = 0; mask = 1;
    while (data != 0) { temp = data & mask; ocount += temp; data >>= 1; }
    Outport = ocount; notify(done); }``
    """
    return (
        BehaviorBuilder(name, ports=("Inport", "Outport"), repeat=True)
        .local("data", 0)
        .local("ocount", 0)
        .local("mask", 1)
        .local("temp", 0)
        .wait("start")
        .assign("data", Var("Inport"))
        .assign("ocount", 0)
        .assign("mask", 1)
        .loop(
            Binary("!=", Var("data"), Lit(0)),
            [
                Assign("temp", Binary("&", Var("data"), Var("mask"))),
                Assign("ocount", Binary("+", Var("ocount"), Var("temp"))),
                Assign("data", Binary(">>", Var("data"), Lit(1))),
            ],
        )
        .assign("Outport", Var("ocount"))
        .notify("done")
        .build()
    )


def even_behavior(name: str = "even") -> Behavior:
    """The even-test behavior: reads ``ocount`` and publishes the parity verdict.

    Triggered by ``idone`` (the completion of a ``ones`` run), it reads the
    count from its ``count_port`` and writes ``1`` to ``even_port`` when the
    count is even, ``0`` otherwise, then notifies ``even_done``.
    """
    return (
        BehaviorBuilder(name, ports=("count_port", "even_port"), repeat=True)
        .local("count", 0)
        .wait("idone")
        .assign("count", Var("count_port"))
        .when(
            Binary("==", Binary("%", Var("count"), Lit(2)), Lit(0)),
            [Assign("even_port", Lit(1))],
            [Assign("even_port", Lit(0))],
        )
        .notify("even_done")
        .build()
    )


def io_behavior(workload: Sequence[int], name: str = "io") -> Behavior:
    """The IO interface: feeds the workload words and collects the results.

    For every word of the workload it publishes the word on ``data``, raises
    ``istart``, waits for ``even_done`` (the full pipeline completion), and
    records the count and parity results.
    """
    builder = BehaviorBuilder(name, ports=("data", "ocount", "parity"), repeat=False)
    builder.local("index", 0)
    for word in workload:
        builder.assign("data", int(word))
        builder.notify("istart")
        builder.wait("even_done")
        builder.assign("collected_count", Var("ocount"))
        builder.assign("collected_parity", Var("parity"))
    return builder.build()


@dataclass
class SpecificationRun:
    """Results of running the specification-level EPC on a workload."""

    workload: tuple[int, ...]
    counts: tuple[int, ...]
    parities: tuple[int, ...]
    run: DesignRun

    @property
    def count_flow(self) -> list[int]:
        """The flow of counts produced on ``ocount`` (one per workload word)."""
        return list(self.counts)

    @property
    def parity_flow(self) -> list[int]:
        """The flow of parity verdicts (1 = even) produced by the even unit."""
        return list(self.parities)

    def matches_reference(self, width: int = DEFAULT_WIDTH) -> bool:
        """True when counts and parities agree with the golden model."""
        expected_counts = [reference_ones(word, width) for word in self.workload]
        expected_parities = [1 if reference_even(word, width) else 0 for word in self.workload]
        return list(self.counts) == expected_counts and list(self.parities) == expected_parities


def epc_specification_design(workload: Sequence[int], name: str = "EpcSpecification") -> Design:
    """The specification-level EPC design: io | ones | even over shared events.

    The ``ones`` behavior waits on ``start`` / notifies ``done``; the design's
    events are named ``istart`` / ``idone`` — the renaming is applied when the
    design is assembled (the paper's diagram uses ``istart``/``idone`` for the
    interface, ``start``/``done`` inside the unit).
    """
    ones = _rename_events(ones_behavior(), {"start": "istart", "done": "idone"})
    even = even_behavior()
    io = io_behavior(workload)
    return (
        DesignBuilder(name)
        .variable("data", 0)
        .variable("ocount", 0)
        .variable("parity", 0)
        .variable("collected_count", -1)
        .variable("collected_parity", -1)
        .event("istart", "idone", "even_done")
        .instance(ones, "ones", {"Inport": "data", "Outport": "ocount"})
        .instance(even, "even", {"count_port": "ocount", "even_port": "parity"})
        .instance(io, "io")
        .build()
    )


def run_specification(workload: Sequence[int], name: str = "EpcSpecification") -> SpecificationRun:
    """Interpret the specification-level EPC and collect its flows."""
    design = epc_specification_design(workload, name)
    run = run_design(design, observed=["ocount", "parity", "data"])
    counts = tuple(run.flow("ocount"))
    parities = tuple(run.flow("parity"))
    return SpecificationRun(tuple(int(w) for w in workload), counts, parities, run)


def _rename_events(behavior: Behavior, mapping: dict[str, str]) -> Behavior:
    """Return a copy of ``behavior`` with wait/notify event names rewritten."""
    from ..specc.ast import Notify, SpecCStatement, Wait

    def rewrite(statements: list[SpecCStatement]) -> list[SpecCStatement]:
        rewritten: list[SpecCStatement] = []
        for statement in statements:
            if isinstance(statement, Wait):
                rewritten.append(Wait(*[mapping.get(e, e) for e in statement.events]))
            elif isinstance(statement, Notify):
                rewritten.append(Notify(mapping.get(statement.event, statement.event)))
            elif isinstance(statement, While):
                rewritten.append(While(statement.condition, rewrite(statement.body)))
            elif isinstance(statement, If):
                rewritten.append(If(statement.condition, rewrite(statement.then), rewrite(statement.otherwise)))
            else:
                rewritten.append(statement)
        return rewritten

    return Behavior(behavior.name, behavior.ports, dict(behavior.locals), rewrite(list(behavior.body)), behavior.repeat)
