"""RTL level of the EPC: the master-clocked finite state machine.

"The RTL layer of the EPC consists of the introduction of a master clock
``clk`` and of a reset signal ``rst`` together with the conversion of the EPC
communication-layer specification into finite-state machine code."  The
paper's listing enumerates the states S0..S7:

========  =======================================================
state     action
========  =======================================================
S0        ``done = 0; ack_istart = 0; if (start) state = S1``
S1        ``ack_istart = 1; data = inport; state = S2``
S2        ``ocount = 0; state = S3``
S3        ``mask = 1; state = S4``
S4        ``temp = data & mask; state = S5``
S5        ``ocount = ocount + temp; state = S6``
S6        ``data = data >> 1; if (data == 0) state = S7 else S4``
S7        ``outport = ocount; done = 1; if (ack_idone) state = S0``
========  =======================================================

The FSM is written directly in SIGNAL (every register synchronous to ``clk``,
reset through ``rst``), exactly the shape the SpecC→SIGNAL translator produces
for critical sections; a small test-bench driver (:func:`run_rtl`) plays the
role of the environment performing the ``start``/``ack_istart`` and
``done``/``ack_idone`` handshakes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.values import ABSENT, EVENT
from ..signal.ast import ProcessDefinition
from ..signal.dsl import ProcessBuilder, call, const, sig
from ..simulation.simulator import Simulator
from ..simulation.traces import Trace
from .spec_level import DEFAULT_WIDTH, reference_even, reference_ones

#: Symbolic names for the FSM states of the paper's listing.
S0, S1, S2, S3, S4, S5, S6, S7 = range(8)


def rtl_ones_process(name: str = "OnesRtl") -> ProcessDefinition:
    """The RTL FSM of the ``ones`` unit as a master-clocked SIGNAL process."""
    builder = ProcessBuilder(name)
    clk = builder.input("clk", "event")
    rst = builder.input("rst", "boolean")
    start = builder.input("start", "boolean")
    ack_idone = builder.input("ack_idone", "boolean")
    inport = builder.input("inport", "integer")
    outport = builder.output("outport", "integer")
    done = builder.output("done", "boolean")
    ack_istart = builder.output("ack_istart", "boolean")

    state = builder.local("state", "integer")
    state_reg = builder.local("state_reg", "integer")
    effective = builder.local("effective_state", "integer")
    data = builder.local("data", "integer")
    data_reg = builder.local("data_reg", "integer")
    ocount = builder.local("ocount", "integer")
    ocount_reg = builder.local("ocount_reg", "integer")
    mask = builder.local("mask", "integer")
    mask_reg = builder.local("mask_reg", "integer")
    temp = builder.local("temp", "integer")
    temp_reg = builder.local("temp_reg", "integer")

    # Registers.
    builder.define(state_reg, state.delayed(S0))
    builder.define(data_reg, data.delayed(0))
    builder.define(ocount_reg, ocount.delayed(0))
    builder.define(mask_reg, mask.delayed(1))
    builder.define(temp_reg, temp.delayed(0))

    # Synchronous reset: the effective state is S0 whenever rst is high.
    builder.define(effective, const(S0).when(rst).default(state_reg))

    at = {index: effective.eq(index) for index in range(8)}
    shifted = data_reg >> const(1)

    # Next-state function (the switch of the paper's listing).
    builder.define(
        state,
        (const(S1).when(start).default(const(S0))).when(at[S0])
        .default(const(S2).when(at[S1]))
        .default(const(S3).when(at[S2]))
        .default(const(S4).when(at[S3]))
        .default(const(S5).when(at[S4]))
        .default(const(S6).when(at[S5]))
        .default((const(S7).when(shifted.eq(0)).default(const(S4))).when(at[S6]))
        .default((const(S0).when(ack_idone).default(const(S7))).when(at[S7]))
        .default(effective),
    )

    # Datapath registers.
    builder.define(data, inport.when(at[S1]).default(shifted.when(at[S6])).default(data_reg))
    builder.define(ocount, const(0).when(at[S2]).default((ocount_reg + temp_reg).when(at[S5])).default(ocount_reg))
    builder.define(mask, const(1).when(at[S3]).default(mask_reg))
    builder.define(temp, data_reg.bitand(mask_reg).when(at[S4]).default(temp_reg))

    # Interface wires.
    builder.define(outport, ocount_reg.when(at[S7]))
    builder.define(done, const(True).when(at[S7]).default(const(False)))
    builder.define(ack_istart, const(True).when(at[S1]).default(const(False)))

    # Everything is synchronous to the master clock.
    for register in (state, data, ocount, mask, temp, effective):
        builder.synchronize(register, clk)
    for wire in (rst, start, ack_idone, inport, done, ack_istart):
        builder.synchronize(wire, clk)
    return builder.build()


def rtl_reference_process(name: str = "OnesRtlReference") -> ProcessDefinition:
    """A cycle-accurate golden model of the RTL FSM, implemented differently.

    It walks the same states S0..S7 with the same interface wires and the same
    cycle counts, but computes the bit count in one go (``popcount``) when the
    word is captured at S1 instead of accumulating ``data & mask`` through the
    loop.  Being observationally identical cycle per cycle, it is strongly
    bisimilar to :func:`rtl_ones_process` on the interface — the specification
    against which the implementation's bisimulation obligation is discharged
    (and against which injected bugs are caught, see the tests and E9).
    """
    builder = ProcessBuilder(name)
    clk = builder.input("clk", "event")
    rst = builder.input("rst", "boolean")
    start = builder.input("start", "boolean")
    ack_idone = builder.input("ack_idone", "boolean")
    inport = builder.input("inport", "integer")
    outport = builder.output("outport", "integer")
    done = builder.output("done", "boolean")
    ack_istart = builder.output("ack_istart", "boolean")

    state = builder.local("state", "integer")
    state_reg = builder.local("state_reg", "integer")
    effective = builder.local("effective_state", "integer")
    data = builder.local("data", "integer")
    data_reg = builder.local("data_reg", "integer")
    count = builder.local("count", "integer")
    count_reg = builder.local("count_reg", "integer")

    builder.define(state_reg, state.delayed(S0))
    builder.define(data_reg, data.delayed(0))
    builder.define(count_reg, count.delayed(0))
    builder.define(effective, const(S0).when(rst).default(state_reg))

    at = {index: effective.eq(index) for index in range(8)}
    shifted = data_reg >> const(1)

    builder.define(
        state,
        (const(S1).when(start).default(const(S0))).when(at[S0])
        .default(const(S2).when(at[S1]))
        .default(const(S3).when(at[S2]))
        .default(const(S4).when(at[S3]))
        .default(const(S5).when(at[S4]))
        .default(const(S6).when(at[S5]))
        .default((const(S7).when(shifted.eq(0)).default(const(S4))).when(at[S6]))
        .default((const(S0).when(ack_idone).default(const(S7))).when(at[S7]))
        .default(effective),
    )
    builder.define(data, inport.when(at[S1]).default(shifted.when(at[S6])).default(data_reg))
    builder.define(count, call("popcount", inport).when(at[S1]).default(count_reg))
    builder.define(outport, count_reg.when(at[S7]))
    builder.define(done, const(True).when(at[S7]).default(const(False)))
    builder.define(ack_istart, const(True).when(at[S1]).default(const(False)))

    for register in (state, data, count, effective):
        builder.synchronize(register, clk)
    for wire in (rst, start, ack_idone, inport, done, ack_istart):
        builder.synchronize(wire, clk)
    return builder.build()


@dataclass
class RtlRun:
    """Flows produced by an RTL-level execution."""

    workload: tuple[int, ...]
    counts: tuple[int, ...]
    parities: tuple[int, ...]
    cycles: int
    trace: Trace | None = None

    def matches_reference(self, width: int = DEFAULT_WIDTH) -> bool:
        """True when the flows agree with the golden model."""
        expected_counts = [reference_ones(word, width) for word in self.workload]
        expected_parities = [1 if reference_even(word, width) else 0 for word in self.workload]
        return list(self.counts) == expected_counts and list(self.parities) == expected_parities


def run_rtl(
    workload: Sequence[int],
    width: int = DEFAULT_WIDTH,
    max_cycles_per_word: int = 200,
    reset_cycles: int = 1,
) -> RtlRun:
    """Drive the RTL FSM through the ``start``/``done`` handshake for a workload.

    The test-bench applies ``rst`` for ``reset_cycles`` cycles, then for every
    word: raises ``start`` with the word on ``inport`` until ``ack_istart``,
    waits for ``done``, captures ``outport`` and acknowledges with
    ``ack_idone``.  The parity verdict is computed from the captured count, as
    the ``even`` unit of the upper levels does.
    """
    simulator = Simulator(rtl_ones_process())
    mask = (1 << width) - 1
    cycles = 0

    def cycle(rst: bool, start: bool, ack: bool, word: int) -> dict:
        nonlocal cycles
        cycles += 1
        return simulator.step(
            {
                "clk": EVENT,
                "rst": rst,
                "start": start,
                "ack_idone": ack,
                "inport": word & mask,
            }
        )

    for _ in range(reset_cycles):
        cycle(True, False, False, 0)

    counts: list[int] = []
    for word in workload:
        # Raise start until the FSM acknowledges it.
        for _ in range(max_cycles_per_word):
            instant = cycle(False, True, False, word)
            if instant["ack_istart"] is True:
                break
        else:
            raise RuntimeError("RTL test-bench: start was never acknowledged")
        # Wait for completion.
        captured = None
        for _ in range(max_cycles_per_word):
            instant = cycle(False, False, False, word)
            if instant["done"] is True:
                captured = instant["outport"]
                break
        else:
            raise RuntimeError("RTL test-bench: done was never raised")
        counts.append(captured)
        # Acknowledge the completion so the FSM returns to S0.
        cycle(False, False, True, word)

    parities = [1 if count % 2 == 0 else 0 for count in counts]
    return RtlRun(
        tuple(int(w) for w in workload),
        tuple(counts),
        tuple(parities),
        cycles,
        simulator.trace,
    )
