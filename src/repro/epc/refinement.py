"""The EPC refinement chain and its verification obligations.

This module assembles the paper's case study end to end: the same workload is
run at every abstraction level (specification, architecture over ChMP, GALS
over FIFOs, communication over the bus, RTL FSM), and the refinement
obligations between consecutive levels are discharged with the verification
substrate:

* flow-equivalence of the observable flows (the observer of the paper's
  diagram) between every pair of consecutive levels;
* static endochrony of the SIGNAL components that get desynchronised;
* bisimulation of the RTL control skeleton against the SpecC→SIGNAL
  translation of the ``ones`` behavior (the paper's "proving it bisimilar to
  the encoding of the communication layer" obligation), on a reduced data
  width so the state spaces stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..clocks.endochrony import EndochronyReport, analyse_endochrony
from ..core.properties import RefinementReport, PropertyReport
from ..core.values import ABSENT, EVENT
from ..simulation.traces import Trace
from ..verification.bisimulation import BisimulationResult, check_bisimulation
from ..verification.explorer import ExplorationOptions, explore
from ..verification.observer import FlowObserver, ObserverVerdict
from .architecture_level import ArchitectureRun, run_architecture, run_gals_architecture
from .communication_level import CommunicationRun, run_communication
from .rtl_level import RtlRun, rtl_ones_process, run_rtl
from .signal_model import ones_endochronous_process, ones_translated
from .spec_level import DEFAULT_WIDTH, SpecificationRun, reference_even, reference_ones, run_specification

#: The default workload used by the examples and benchmarks.
DEFAULT_WORKLOAD = (13, 7, 0, 255, 128, 1, 2, 170)


def _flow_verdict(left_flows: dict[str, list], right_flows: dict[str, list], observed: Sequence[str]) -> ObserverVerdict:
    """Compare two dictionaries of flows with the observer."""
    observer = FlowObserver(observed)
    for name in observed:
        for value in left_flows.get(name, []):
            observer.feed("left", name, value)
        for value in right_flows.get(name, []):
            observer.feed("right", name, value)
    return observer.verdict(strict=True)


def _as_property(verdict: ObserverVerdict, name: str) -> PropertyReport:
    return PropertyReport(bool(verdict), name, details=verdict.explain())


def _endochrony_property(report: EndochronyReport) -> PropertyReport:
    return PropertyReport(bool(report), "static-endochrony", details="; ".join(report.issues) or report.summary())


def _bisimulation_property(result: BisimulationResult) -> PropertyReport:
    return PropertyReport(bool(result), "bisimulation", details=result.explain())


@dataclass
class RefinementChainResult:
    """All level runs plus the per-step verification reports."""

    workload: tuple[int, ...]
    specification: SpecificationRun
    architecture: ArchitectureRun
    gals: ArchitectureRun
    communication: CommunicationRun
    rtl: RtlRun
    steps: list[RefinementReport] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """True when every refinement obligation is discharged."""
        return all(step.holds for step in self.steps)

    def step(self, name: str) -> RefinementReport:
        """Look up a refinement step report by name."""
        for report in self.steps:
            if report.step == name:
                return report
        raise KeyError(f"no refinement step named {name!r}")

    def summary(self) -> str:
        """Readable end-to-end report of the refinement chain."""
        lines = [
            f"EPC refinement chain on workload {list(self.workload)}:",
            f"  specification counts: {list(self.specification.counts)}",
            f"  rtl counts:           {list(self.rtl.counts)}",
            f"  overall verdict:      {'CORRECT' if self.holds else 'FAILED'}",
        ]
        for step in self.steps:
            lines.append(step.summary())
        return "\n".join(lines)


def check_refinement_chain(
    workload: Sequence[int] = DEFAULT_WORKLOAD,
    width: int = DEFAULT_WIDTH,
    include_bisimulation: bool = False,
    bisimulation_width: int = 2,
) -> RefinementChainResult:
    """Run every level of the EPC on ``workload`` and discharge the obligations.

    ``include_bisimulation`` additionally explores the RTL FSM and the
    SpecC→SIGNAL translation on a reduced data width (``bisimulation_width``
    bits) and checks them bisimilar on the observable count flow — the
    exhaustive counterpart of the trace-based flow comparison.
    """
    workload = tuple(int(w) for w in workload)
    specification = run_specification(workload)
    architecture = run_architecture(workload)
    gals = run_gals_architecture(workload)
    communication = run_communication(workload, width)
    rtl = run_rtl(workload, width)

    result = RefinementChainResult(workload, specification, architecture, gals, communication, rtl)

    # Step 0: the specification meets the golden model.
    step0 = RefinementReport("specification-correctness")
    reference_counts = [reference_ones(word, width) for word in workload]
    reference_parities = [1 if reference_even(word, width) else 0 for word in workload]
    step0.add(
        "golden-counts",
        "the specification-level ones unit computes the reference bit counts",
        PropertyReport(list(specification.counts) == reference_counts, "golden-counts"),
    )
    step0.add(
        "golden-parity",
        "the specification-level even unit computes the reference parity",
        PropertyReport(list(specification.parities) == reference_parities, "golden-parity"),
    )
    result.steps.append(step0)

    # Step 1: specification -> architecture (ChMP channel).
    step1 = RefinementReport("specification-to-architecture")
    step1.add(
        "flow-preservation",
        "ocount and parity flows are preserved across the ChMP refinement",
        _as_property(
            _flow_verdict(
                {"ocount": list(specification.counts), "parity": list(specification.parities)},
                {"ocount": list(architecture.counts), "parity": list(architecture.parities)},
                ["ocount", "parity"],
            ),
            "flow-preservation",
        ),
    )
    result.steps.append(step1)

    # Step 2: architecture -> GALS deployment of the SIGNAL components.
    step2 = RefinementReport("architecture-to-gals")
    step2.add(
        "component-endochrony-ones",
        "the desynchronised ones component is statically endochronous",
        _endochrony_property(analyse_endochrony(ones_endochronous_process())),
    )
    step2.add(
        "flow-preservation",
        "the desynchronised (FIFO) deployment preserves the flows",
        _as_property(
            _flow_verdict(
                {"ocount": list(architecture.counts), "parity": list(architecture.parities)},
                {"ocount": list(gals.counts), "parity": list(gals.parities)},
                ["ocount", "parity"],
            ),
            "flow-preservation",
        ),
    )
    result.steps.append(step2)

    # Step 3: architecture -> communication (bus).
    step3 = RefinementReport("architecture-to-communication")
    step3.add(
        "flow-preservation",
        "the bus-level refinement of ChMP preserves the flows",
        _as_property(
            _flow_verdict(
                {"ocount": list(architecture.counts), "parity": list(architecture.parities)},
                {"ocount": list(communication.counts), "parity": list(communication.parities)},
                ["ocount", "parity"],
            ),
            "flow-preservation",
        ),
    )
    step3.add(
        "bus-carries-workload",
        "the request bus carries exactly the workload words",
        PropertyReport(list(communication.bus_traffic) == list(workload), "bus-carries-workload"),
    )
    result.steps.append(step3)

    # Step 4: communication -> RTL.
    step4 = RefinementReport("communication-to-rtl")
    step4.add(
        "flow-preservation",
        "the RTL FSM produces the same count and parity flows",
        _as_property(
            _flow_verdict(
                {"ocount": list(communication.counts), "parity": list(communication.parities)},
                {"ocount": list(rtl.counts), "parity": list(rtl.parities)},
                ["ocount", "parity"],
            ),
            "flow-preservation",
        ),
    )
    step4.add(
        "rtl-endochrony",
        "the RTL FSM is statically endochronous (single master clock clk)",
        _endochrony_property(analyse_endochrony(rtl_ones_process())),
    )
    if include_bisimulation:
        step4.add(
            "control-bisimulation",
            f"RTL FSM is bisimilar to the SpecC translation on {bisimulation_width}-bit data",
            _bisimulation_property(check_rtl_bisimulation(bisimulation_width)),
        )
    result.steps.append(step4)

    return result


def check_rtl_bisimulation(
    width: int = 2,
    max_states: int = 4000,
    implementation=None,
) -> BisimulationResult:
    """Explore the RTL implementation and its cycle-accurate golden model.

    Both FSMs (the accumulating implementation of :func:`rtl_ones_process` and
    the ``popcount``-based reference of
    :func:`~repro.epc.rtl_level.rtl_reference_process`) are driven by the same
    reduced-width data domain and observed through their interface wires
    (``outport``, ``done``, ``ack_istart``).  Strong bisimilarity of the
    reachable, observation-projected systems is the paper's RTL-level
    obligation; passing ``implementation`` lets the tests and benchmarks
    substitute a mutated FSM and watch the check fail.
    """
    from .rtl_level import rtl_reference_process

    domain = tuple(range(2 ** width))
    options = ExplorationOptions(
        integer_domain=domain,
        driven_signals=["clk", "rst", "start", "ack_idone", "inport"],
        observed=["outport", "done", "ack_istart"],
        max_states=max_states,
    )
    implementation_lts = explore(implementation or rtl_ones_process(), options).lts
    reference_lts = explore(rtl_reference_process(), options).lts
    return check_bisimulation(implementation_lts, reference_lts, observed=["outport", "done", "ack_istart"])


def ablation_drop_handshake(
    workload: Sequence[int] = DEFAULT_WORKLOAD,
    consumer_period: int = 2,
) -> ObserverVerdict:
    """Ablation: replace the handshaken link by an unsynchronised shared register.

    Without the ChMP back-pressure, the producer overwrites the shared slot
    whenever the consumer has not sampled it yet: with a consumer that samples
    once every ``consumer_period`` productions, part of the count flow is lost
    and the remaining values reach the even unit out of correspondence with the
    workload.  The observer detects the divergence — the negative control of
    experiment E7 showing why the paper's refinement needs the protocol.
    """
    workload = tuple(int(w) for w in workload)
    produced = [reference_ones(word) for word in workload]

    # Lossy register: the consumer only sees the value present in the register
    # at its sampling instants; values written in between are overwritten.
    register: Optional[int] = None
    sampled: list[int] = []
    for index, value in enumerate(produced):
        register = value
        if (index + 1) % consumer_period == 0:
            sampled.append(register)
    if register is not None and len(produced) % consumer_period != 0:
        sampled.append(register)

    observer = FlowObserver(["ocount"])
    for value in produced:
        observer.feed("left", "ocount", value)
    for value in sampled:
        observer.feed("right", "ocount", value)
    return observer.verdict(strict=True)
