"""Repo-level pytest plumbing: timeout guards and the bench-smoke trajectory file.

``make bench-smoke`` (``pytest -m bench_smoke``) smoke-runs every
``benchmarks/bench_*.py`` main path at its smallest size.  This plugin
records each smoke test's wall-clock plus the process-wide BDD counters the
run accumulated (peak unique-table nodes and dynamic-reorder count, reset
per test — see :mod:`repro.clocks.bdd`) and, when the run actually selected
the ``bench_smoke`` marker (or ``BENCH_SMOKE_JSON`` names an output path),
writes them to ``BENCH_SMOKE.json`` — the artifact CI uploads on every
build, seeding the benchmark trajectory without a full pytest-benchmark
campaign.  ``tools/check_bench_regression.py`` compares that file against
the committed ``benchmarks/BENCH_BASELINE.json`` and fails CI on a >3x
regression of any benchmark's wall-clock or peak-node count.
"""

import json
import os
import platform
import signal
import threading
import time

import pytest

_durations: dict[str, float] = {}
_bdd_stats: dict[str, dict] = {}
#: True when the session's *collected items* are exactly the bench-smoke
#: suite.  Set at collection time — substring-matching the ``-m`` expression
#: would misread ``-m "not bench_smoke"`` (or any compound expression
#: mentioning the marker) as a smoke run and overwrite BENCH_SMOKE.json
#: with an empty or partial payload.
_bench_smoke_run = False


def _bdd_module():
    try:
        from repro.clocks import bdd
    except ImportError:  # pragma: no cover - repro not importable (bad env)
        return None
    return bdd


def _parallel_module():
    try:
        from repro.verification import parallel
    except ImportError:  # pragma: no cover - repro not importable (bad env)
        return None
    return parallel


def _codegen_module():
    try:
        from repro.simulation import codegen
    except ImportError:  # pragma: no cover - repro not importable (bad env)
        return None
    return codegen


@pytest.fixture(scope="session")
def step_compile_mode() -> str:
    """The step engine this session runs reactions on.

    CI's ``step-compile`` matrix leg exports ``REPRO_STEP_COMPILE``
    (``interp``, ``codegen``) so the differential and explorer suites run
    against both engines; everywhere else the default is the generated
    kernels, with the interpreter kept as the oracle.
    """
    return os.environ.get("REPRO_STEP_COMPILE", "codegen")


@pytest.fixture(scope="session")
def bdd_core_mode() -> str:
    """The BDD core this session builds decision diagrams on.

    CI's ``bdd-core`` matrix leg exports ``REPRO_BDD_CORE`` (``object``,
    ``array``) so the differential and symbolic suites run against both
    cores; everywhere else the default is the array core with complement
    edges, with the object core kept as the oracle.
    """
    return os.environ.get("REPRO_BDD_CORE", "array")


@pytest.fixture(scope="session")
def parallel_workers() -> int:
    """Worker count for the pooled-image differential suite.

    CI's ``parallel`` matrix leg exports ``REPRO_PARALLEL_WORKERS`` (1, 2, 4)
    so the same tests exercise every pool width; local runs default to 2 —
    wide enough to cross the process boundary, cheap enough for one core.
    """
    return int(os.environ.get("REPRO_PARALLEL_WORKERS", "2"))


# --------------------------------------------------------------------- timeout guard

@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Enforce ``@pytest.mark.timeout(seconds)``: fail, don't hang.

    The multiprocess pool tests deadlock rather than fail when the queue or
    service loop regresses; without a guard, CI hangs until the job-level
    kill and reports nothing useful.  SIGALRM (via ``setitimer``, so
    fractional budgets work) interrupts the test body with a pointed
    failure.  Only usable on the POSIX main thread — anywhere else the
    marker degrades to a no-op rather than breaking collection.
    """
    marker = item.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if marker and marker.args else 0.0
    usable = (
        seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        return (yield)

    def expired(signum, frame):
        pytest.fail(f"test exceeded its {seconds:g}s timeout guard", pytrace=False)

    previous = signal.signal(signal.SIGALRM, expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------- bench-smoke output

def pytest_collection_finish(session):
    # Runs after every collection-modifying hook — in particular after the
    # ``-m`` marker filter has deselected items — so ``session.items`` is
    # exactly what will execute.
    global _bench_smoke_run
    items = session.items
    _bench_smoke_run = bool(items) and all("bench_smoke" in item.keywords for item in items)


def pytest_runtest_setup(item):
    if "bench_smoke" in item.keywords:
        bdd = _bdd_module()
        if bdd is not None:
            bdd.reset_global_stats()
        parallel = _parallel_module()
        if parallel is not None:
            parallel.reset_global_stats()
        codegen = _codegen_module()
        if codegen is not None:
            codegen.reset_global_stats()


def pytest_runtest_logreport(report):
    if report.when == "call" and report.passed and "bench_smoke" in report.keywords:
        _durations[report.nodeid] = report.duration
        bdd = _bdd_module()
        if bdd is not None:
            stats = bdd.global_stats()
            _bdd_stats[report.nodeid] = {
                "peak_nodes": stats["peak_nodes"],
                "reorders": stats["reorders"],
                "cache_hits": stats["cache_hits"],
                "cache_misses": stats["cache_misses"],
            }
            # Array-vs-object image throughput, recorded by the benchmark
            # itself (bench_bdd_core.py); 0.0 everywhere else.
            if stats["core_speedup"]:
                _bdd_stats[report.nodeid]["core_speedup"] = stats["core_speedup"]
        parallel = _parallel_module()
        if parallel is not None:
            # Worker count the benchmark actually ran with (0 = sequential).
            # The regression gate uses it to skip scaling assertions on
            # runners with too few cores to show a speedup.
            entry = _bdd_stats.setdefault(report.nodeid, {})
            entry["workers"] = parallel.global_stats()["workers"]
        codegen = _codegen_module()
        if codegen is not None:
            # Codegen-vs-interp step throughput, recorded by the benchmark
            # itself (bench_step_codegen.py); 0.0 everywhere else.
            speedup = codegen.global_stats()["step_speedup"]
            if speedup:
                entry = _bdd_stats.setdefault(report.nodeid, {})
                entry["step_speedup"] = speedup


def _output_path(config) -> str | None:
    explicit = os.environ.get("BENCH_SMOKE_JSON")
    if explicit:
        return explicit
    if _bench_smoke_run:
        return os.path.join(str(config.rootpath), "BENCH_SMOKE.json")
    return None


def pytest_sessionfinish(session, exitstatus):
    path = _output_path(session.config)
    if path is None or not _durations:
        return
    payload = {
        "schema": "bench-smoke/3",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "exit_status": int(exitstatus),
        "total_seconds": round(sum(_durations.values()), 6),
        "benchmarks": [
            {
                "id": nodeid,
                "seconds": round(seconds, 6),
                **_bdd_stats.get(nodeid, {}),
            }
            for nodeid, seconds in sorted(_durations.items())
        ],
    }
    # Write-then-rename: a failing run must not leave a half-written (or
    # fully written but unrepresentative) smoke file shadowing the last good
    # one — the regression gate would compare garbage against the baseline.
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    if int(exitstatus) == 0:
        os.replace(tmp, path)
    else:
        os.unlink(tmp)
